"""Property-based tests for the allocator and segments."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BadSharedAlloc
from repro.memory.allocator import SharedAllocator
from repro.memory.segment import Segment, type_spec


class TestAllocatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 200)),
                st.tuples(st.just("free"), st.integers(0, 30)),
            ),
            max_size=60,
        )
    )
    def test_no_overlap_and_conservation(self, ops):
        """Live blocks never overlap; free+live bytes always equal the
        segment size."""
        size = 4096
        alloc = SharedAllocator(Segment(0, size))
        live: list[tuple[int, int]] = []
        for kind, arg in ops:
            if kind == "alloc":
                try:
                    off = alloc.allocate(arg)
                except BadSharedAlloc:
                    continue
                live.append((off, alloc.size_of(off)))
            elif live:
                off, _ = live.pop(arg % len(live))
                alloc.free(off)
            # invariants
            spans = sorted(live)
            for (o1, s1), (o2, _) in zip(spans, spans[1:]):
                assert o1 + s1 <= o2, "overlapping live blocks"
            assert alloc.bytes_free() + alloc.bytes_live() == size
            assert alloc.bytes_live() == sum(s for _, s in live)

    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.integers(1, 64), min_size=1, max_size=40))
    def test_free_all_restores_everything(self, sizes):
        size = 8192
        alloc = SharedAllocator(Segment(0, size))
        offs = []
        for s in sizes:
            try:
                offs.append(alloc.allocate(s))
            except BadSharedAlloc:
                break
        for off in offs:
            alloc.free(off)
        assert alloc.bytes_free() == size
        # and the space fully coalesced
        assert alloc.allocate(size) == 0


class TestSegmentProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.integers(0, (1 << 64) - 1), min_size=1, max_size=32
        ),
        offset_slots=st.integers(0, 16),
    )
    def test_u64_array_roundtrip(self, values, offset_slots):
        seg = Segment(0, 1024)
        ts = type_spec("u64")
        if offset_slots * 8 + len(values) * 8 > 1024:
            return
        seg.write_array(offset_slots * 8, ts, values)
        out = seg.read_array(offset_slots * 8, ts, len(values))
        assert [int(x) for x in out] == values

    @settings(max_examples=60, deadline=None)
    @given(data=st.binary(min_size=1, max_size=64), offset=st.integers(0, 100))
    def test_bytes_roundtrip(self, data, offset):
        seg = Segment(0, 256)
        if offset + len(data) > 256:
            return
        seg.write_bytes(offset, data)
        assert seg.read_bytes(offset, len(data)) == data

    @settings(max_examples=40, deadline=None)
    @given(
        v=st.floats(allow_nan=False, allow_infinity=False, width=64),
    )
    def test_f64_scalar_exact(self, v):
        seg = Segment(0, 64)
        ts = type_spec("f64")
        seg.write_scalar(0, ts, v)
        assert seg.read_scalar(0, ts) == v

    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, (1 << 64) - 1)),
            max_size=30,
        )
    )
    def test_writes_are_independent(self, writes):
        """Writing one slot never disturbs others (model vs numpy)."""
        seg = Segment(0, 256)
        ts = type_spec("u64")
        model = [0] * 32
        for slot, val in writes:
            seg.write_scalar(slot * 8, ts, val)
            model[slot] = val
        assert [int(x) for x in seg.view_array(0, ts, 32)] == model
