"""Unit tests for futures: readiness, results, chaining, waiting."""

import pytest

from repro.core.cell import PromiseCell, alloc_cell
from repro.core.future import Future, make_future, to_future
from repro.errors import DeadlockError, FutureError
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction


class TestMakeFuture:
    def test_valueless_ready(self, ctx):
        f = make_future()
        assert f.is_ready()
        assert f.result() is None
        assert f.nvalues == 0

    def test_single_value(self, ctx):
        f = make_future(42)
        assert f.is_ready()
        assert f.result() == 42

    def test_multi_value_returns_tuple(self, ctx):
        f = make_future(1, "x")
        assert f.result() == (1, "x")
        assert f.result_tuple() == (1, "x")

    def test_valueless_uses_shared_cell(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        before = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        make_future()
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before

    def test_value_future_always_allocates(self, versioned_ctx):
        """§III-B: the value must be stored somewhere."""
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        before = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        make_future(5)
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before + 1

    def test_to_future_passthrough(self, ctx):
        f = make_future(1)
        assert to_future(f) is f

    def test_to_future_wraps_value(self, ctx):
        assert to_future(9).result() == 9


class TestResult:
    def test_result_before_ready_raises(self, ctx):
        f = Future(PromiseCell(deps=1))
        with pytest.raises(FutureError):
            f.result()

    def test_result_after_fulfill(self, ctx):
        cell = PromiseCell(nvalues=1, deps=1)
        f = Future(cell)
        cell.set_values((3,))
        cell.fulfill()
        assert f.result() == 3


class TestThen:
    def test_then_on_ready_runs_synchronously(self, ctx):
        """UPC++ semantics: a ready future executes the callback during
        then() — this is the observable face of eager notification."""
        ran = []
        make_future(5).then(lambda v: ran.append(v))
        assert ran == [5]

    def test_then_on_pending_defers(self, ctx):
        cell = PromiseCell(deps=1)
        ran = []
        Future(cell).then(lambda: ran.append(1))
        assert ran == []
        cell.fulfill()
        assert ran == [1]

    def test_then_result_value(self, ctx):
        f = make_future(10).then(lambda v: v + 1)
        assert f.result() == 11

    def test_then_chaining(self, ctx):
        f = make_future(1).then(lambda v: v + 1).then(lambda v: v * 10)
        assert f.result() == 20

    def test_then_flattens_futures(self, ctx):
        f = make_future(1).then(lambda v: make_future(v + 100))
        assert f.result() == 101

    def test_then_none_result_is_valueless(self, ctx):
        f = make_future(1).then(lambda v: None)
        assert f.is_ready()
        assert f.result() is None
        assert f.nvalues == 0

    def test_then_tuple_result_multi_value(self, ctx):
        f = make_future().then(lambda: (1, 2))
        assert f.result() == (1, 2)

    def test_pending_then_flattens(self, ctx):
        cell = PromiseCell(deps=1)
        f = Future(cell).then(lambda: make_future(7))
        assert not f._cell.ready
        cell.fulfill()
        assert f.result() == 7

    def test_then_receives_all_values(self, ctx):
        f = make_future(2, 3).then(lambda a, b: a * b)
        assert f.result() == 6


class TestWait:
    def test_wait_on_ready_returns_immediately(self, ctx):
        assert make_future(5).wait() == 5

    def test_wait_drains_progress(self, ctx):
        cell = alloc_cell(ctx, deps=1)
        ctx.progress_engine.enqueue_deferred(cell.fulfill)
        assert Future(cell).wait() is None
        assert cell.ready

    def test_wait_forever_deadlocks_standalone(self, ctx):
        f = Future(PromiseCell(deps=1))
        with pytest.raises(DeadlockError):
            f.wait()

    def test_wait_charges_ready_check(self, ctx):
        f = make_future()
        before = ctx.costs.count(CostAction.FUTURE_READY_CHECK)
        f.wait()
        assert ctx.costs.count(CostAction.FUTURE_READY_CHECK) == before + 1
