"""Edge-case tests for runtime internals: ambient worlds, contexts,
segment wiring, mailbox/app failure paths."""

import pytest

from repro import barrier, new_, new_array, delete_, rank_me
from repro.errors import BadSharedAlloc, SegmentError, UpcxxError
from repro.runtime.config import RuntimeConfig, Version
from repro.runtime.context import (
    current_ctx,
    current_ctx_or_none,
    reset_ambient_ctx,
    set_current_ctx,
)
from repro.runtime.runtime import build_world, spmd_run


class TestAmbientWorld:
    def test_lazily_created(self):
        reset_ambient_ctx()
        set_current_ctx(None)
        assert current_ctx_or_none() is None
        ctx = current_ctx()
        assert ctx.rank == 0 and ctx.world_size == 1
        assert current_ctx_or_none() is ctx

    def test_reset_gives_fresh_segment(self):
        g1 = new_("u64", 1)
        reset_ambient_ctx()
        g2 = new_("u64", 2)
        # same offset (fresh allocator), different world
        assert g1.offset == g2.offset
        assert g2.local().read() == 2

    def test_ambient_is_single_rank_generic(self, ctx):
        assert ctx.config.machine == "generic"
        assert ctx.world.conduit_name == "smp"

    def test_spmd_does_not_leak_context(self):
        spmd_run(lambda: None, ranks=2)
        # the driver thread never had a bound rank context
        ctx = current_ctx()
        assert ctx.world_size == 1


class TestAllocationApi:
    def test_new_array_fill(self, ctx):
        g = new_array("u64", 5, fill=3)
        assert list(g.local().view(5)) == [3] * 5

    def test_new_array_bad_count(self, ctx):
        with pytest.raises(ValueError):
            new_array("u64", 0)

    def test_delete_reclaims(self, ctx):
        before = ctx.allocator.bytes_free()
        g = new_array("u64", 100)
        delete_(g)
        assert ctx.allocator.bytes_free() == before

    def test_delete_null_is_noop(self, ctx):
        from repro.memory.global_ptr import GlobalPtr

        delete_(GlobalPtr.NULL)

    def test_double_delete_detected(self, ctx):
        g = new_("u64")
        delete_(g)
        with pytest.raises(SegmentError):
            delete_(g)

    def test_segment_exhaustion_is_clean(self):
        world = build_world(RuntimeConfig(), segment_bytes=1024)
        set_current_ctx(world.contexts[0])
        try:
            with pytest.raises(BadSharedAlloc):
                new_array("u64", 1000)
        finally:
            set_current_ctx(None)
            reset_ambient_ctx()

    def test_delete_peer_allocation_on_node(self):
        """delete_ works on any locally addressable pointer (PSHM)."""

        def body():
            from repro.memory.global_ptr import GlobalPtr

            g = new_("u64")
            barrier()
            if rank_me() == 0:
                peer = GlobalPtr(1, g.offset, g.ts)
                delete_(peer)  # legal: same node
            barrier()

        spmd_run(body, ranks=2)


class TestSeedIsolation:
    def test_rank_rngs_differ(self):
        def body():
            return current_ctx().rng.random()

        res = spmd_run(body, ranks=4, seed=9)
        assert len(set(res.values)) == 4

    def test_config_seed_propagates(self):
        def body():
            return current_ctx().config.seed

        assert spmd_run(body, ranks=2, seed=123).values == [123, 123]


class TestMatchingFailurePaths:
    def test_mailbox_overflow_raises_cleanly(self):
        from repro.apps.graphs import make_graph
        from repro.apps.matching import MatchingConfig, run_matching

        g = make_graph("youtube", scale=1)
        # shrink the mailbox to 16 slots: guaranteed overflow on youtube
        per = -(-g.n // 4)
        incident_max = max(
            sum(len(g.adj[v]) for v in range(lo, min(lo + per, g.n)))
            for lo in range(0, g.n, per)
        )
        cfg = MatchingConfig(
            graph="youtube", scale=1,
            mailbox_slack=16 - 4 * incident_max,
        )
        with pytest.raises(UpcxxError, match="mailbox"):
            run_matching(cfg, ranks=4, graph=g, machine="generic")


class TestWorldAccounting:
    def test_segment_of_matches_context(self):
        world = build_world(RuntimeConfig(), ranks=3)
        for r in range(3):
            assert world.segment_of(r) is world.contexts[r].segment

    def test_shared_ready_cell_is_world_global(self):
        world = build_world(RuntimeConfig(), ranks=2)
        assert world.shared_ready_cell.ready
        assert world.shared_ready_cell.shared
