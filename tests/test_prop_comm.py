"""Property-based tests for VIS RMA and collectives."""

import functools
import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    new_array,
    rget_indexed,
    rget_strided,
    rput_indexed,
    rput_strided,
)
from repro.coll.collectives import REDUCTION_OPS
from repro.runtime.context import reset_ambient_ctx
from repro.runtime.runtime import spmd_run

u64 = st.integers(0, (1 << 64) - 1)


class TestVisProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        count=st.integers(1, 16),
        stride=st.integers(1, 8),
        values=st.lists(u64, min_size=16, max_size=16),
    )
    def test_strided_roundtrip_matches_numpy(self, count, stride, values):
        """put-then-get at any stride equals the numpy scatter/gather."""
        reset_ambient_ctx()
        size = count * stride + 8
        g = new_array("u64", size)
        vals = values[:count]
        rput_strided(vals, g, count, stride).wait()
        got = rget_strided(g, count, stride).wait()
        assert [int(x) for x in got] == vals
        # the in-between slots stayed zero
        model = np.zeros(size, dtype=np.uint64)
        model[0 : count * stride : stride] = vals
        assert list(g.local().view(size)) == list(model)

    @settings(max_examples=50, deadline=None)
    @given(
        idx=st.lists(st.integers(0, 31), min_size=1, max_size=20),
        values=st.lists(u64, min_size=20, max_size=20),
    )
    def test_indexed_scatter_matches_serial_semantics(self, idx, values):
        """Later writes to the same index win (program order)."""
        reset_ambient_ctx()
        g = new_array("u64", 32)
        vals = values[: len(idx)]
        rput_indexed(vals, g, idx).wait()
        model = np.zeros(32, dtype=np.uint64)
        for k, i in enumerate(idx):
            model[i] = vals[k]
        assert list(g.local().view(32)) == list(model)
        got = rget_indexed(g, idx).wait()
        assert [int(x) for x in got] == [int(model[i]) for i in idx]


class TestCollectiveProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.integers(-(10**6), 10**6), min_size=2, max_size=5
        ),
        op_name=st.sampled_from(sorted(REDUCTION_OPS)),
    )
    def test_reduce_all_equals_functools_reduce(self, values, op_name):
        if op_name in ("bit_and", "bit_or", "bit_xor"):
            values = [abs(v) for v in values]
        ranks = len(values)

        def body():
            from repro import rank_me, reduce_all

            return reduce_all(values[rank_me()], op_name).wait()

        res = spmd_run(body, ranks=ranks)
        expected = functools.reduce(REDUCTION_OPS[op_name], values)
        assert res.values == [expected] * ranks

    @settings(max_examples=15, deadline=None)
    @given(
        payload=st.one_of(
            st.integers(),
            st.text(max_size=20),
            st.lists(st.integers(), max_size=5),
            st.dictionaries(st.text(max_size=3), st.integers(), max_size=3),
        ),
        root=st.integers(0, 2),
    )
    def test_broadcast_delivers_exact_payload(self, payload, root):
        def body():
            from repro import broadcast, rank_me

            v = payload if rank_me() == root else None
            return broadcast(v, root).wait()

        res = spmd_run(body, ranks=3)
        assert res.values == [payload] * 3

    @settings(max_examples=10, deadline=None)
    @given(n_rounds=st.integers(1, 5))
    def test_repeated_collectives_stay_matched(self, n_rounds):
        def body():
            from repro import rank_me, reduce_all

            out = []
            for i in range(n_rounds):
                out.append(reduce_all(rank_me() + i, "add").wait())
            return out

        ranks = 3
        res = spmd_run(body, ranks=ranks)
        expected = [sum(range(ranks)) + ranks * i for i in range(n_rounds)]
        assert all(v == expected for v in res.values)
