"""Unit tests for conduits, active messages, and teams."""

import pytest

from repro.errors import UpcxxError
from repro.gasnet.conduit import (
    _OFFNODE_FACTOR,
    _PSHM_AM_LATENCY_NS,
    CONDUIT_NAMES,
    make_conduit,
)
from repro.gasnet.team import Team
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import current_ctx
from repro.runtime.runtime import build_world, spmd_run
from repro.sim.stats import pshm_cache_hits


def two_rank_world(conduit="smp", n_nodes=1):
    return build_world(
        RuntimeConfig(conduit=conduit), ranks=2, n_nodes=n_nodes
    )


class TestConduitConstruction:
    def test_known_names(self):
        w = two_rank_world()
        for name in CONDUIT_NAMES:
            if name == "smp":
                make_conduit(name, w)

    def test_unknown_name_rejected(self):
        w = two_rank_world()
        with pytest.raises(UpcxxError):
            make_conduit("carrier-pigeon", w)

    def test_pshm_reachability_single_node(self):
        w = two_rank_world(conduit="udp")
        assert w.conduit.pshm_reachable(0, 1)

    def test_pshm_reachability_two_nodes(self):
        w = build_world(RuntimeConfig(conduit="udp"), ranks=4, n_nodes=2)
        assert w.conduit.pshm_reachable(0, 1)
        assert not w.conduit.pshm_reachable(0, 2)

    def test_offnode_latency_ordering(self):
        """UDP sockets are far slower than MPI, which is slower than ibv."""
        lat = {}
        for name in ("udp", "mpi", "ibv"):
            w = build_world(
                RuntimeConfig(conduit=name), ranks=4, n_nodes=2
            )
            lat[name] = w.conduit.am_latency_ns(0, 2)
        assert lat["udp"] > lat["mpi"] > lat["ibv"]

    def test_onnode_latency_small(self):
        w = build_world(RuntimeConfig(conduit="udp"), ranks=4, n_nodes=2)
        assert w.conduit.am_latency_ns(0, 1) < w.conduit.am_latency_ns(0, 2)


class TestLatencyModel:
    """Off-node factors, PSHM conduit-independence, and the validated
    error paths of the latency model."""

    @pytest.mark.parametrize(
        "name,factor", (("udp", 20.0), ("mpi", 2.0), ("ibv", 1.0))
    )
    def test_offnode_factor_applied(self, name, factor):
        w = build_world(RuntimeConfig(conduit=name), ranks=4, n_nodes=2)
        base = w.profile.network_latency_ns
        assert w.conduit.am_latency_ns(0, 2) == pytest.approx(base * factor)

    def test_offnode_bandwidth_term(self):
        w = build_world(RuntimeConfig(conduit="ibv"), ranks=4, n_nodes=2)
        zero = w.conduit.am_latency_ns(0, 2, 0)
        big = w.conduit.am_latency_ns(0, 2, 4096)
        expected = 4096 / w.profile.network_bandwidth_bpns
        assert big - zero == pytest.approx(expected)

    @pytest.mark.parametrize("name", ("udp", "mpi", "ibv"))
    def test_pshm_latency_independent_of_conduit(self, name):
        """On-node AMs ride shared-memory queues: same latency whatever
        the network conduit is, and no payload bandwidth term."""
        w = build_world(RuntimeConfig(conduit=name), ranks=4, n_nodes=2)
        assert w.conduit.am_latency_ns(0, 1) == _PSHM_AM_LATENCY_NS
        assert w.conduit.am_latency_ns(0, 1, 8192) == _PSHM_AM_LATENCY_NS

    def test_smp_offnode_latency_rejected(self):
        """smp has no off-node path (factor None): the error is a typed
        UpcxxError, not an arithmetic failure.  smp worlds are validated
        single-node at construction, so force an off-node pair via the
        topology memo."""
        w = two_rank_world(conduit="smp")
        c = w.conduit
        assert _OFFNODE_FACTOR["smp"] is None
        c._node_of = (0, 1)  # pretend the ranks landed on distinct nodes
        with pytest.raises(UpcxxError, match="off-node"):
            c.am_latency_ns(0, 1)

    def test_unknown_factor_name_raises_typed_error(self):
        """A conduit name missing from the latency table surfaces as
        UpcxxError listing the modeled names — never a bare KeyError."""
        w = build_world(RuntimeConfig(conduit="ibv"), ranks=4, n_nodes=2)
        c = w.conduit
        c.name = "rocket"  # simulate a future conduit without a model
        with pytest.raises(UpcxxError, match="rocket"):
            c.am_latency_ns(0, 2)

    def test_every_conduit_name_has_a_factor(self):
        """Construction-time validation can only hold if the latency
        table covers every constructible name."""
        assert set(CONDUIT_NAMES) <= set(_OFFNODE_FACTOR)

    def test_out_of_range_reachability_rejected(self):
        w = two_rank_world(conduit="udp")
        with pytest.raises(UpcxxError):
            w.conduit.pshm_reachable(0, 9)

    def test_pshm_cache_hits_counter(self):
        """Reachability is served from the static-topology memo; every
        lookup (reachability or latency) counts as a hit."""
        w = build_world(RuntimeConfig(conduit="udp"), ranks=4, n_nodes=2)
        start = pshm_cache_hits(w)
        w.conduit.pshm_reachable(0, 1)
        w.conduit.pshm_reachable(0, 2)
        w.conduit.am_latency_ns(0, 3)
        assert pshm_cache_hits(w) == start + 3
        assert w.conduit.pshm_cache_hits == pshm_cache_hits(w)


class TestAmDelivery:
    def test_am_roundtrip(self):
        w = two_rank_world()
        ctx0, ctx1 = w.contexts
        got = []
        w.conduit.send_am(ctx0, 1, lambda tctx, x: got.append(x), (42,))
        assert w.conduit.has_incoming(1)
        assert not w.conduit.has_incoming(0)
        ctx1.progress()
        assert got == [42]
        assert not w.conduit.has_incoming(1)

    def test_am_to_self(self):
        w = two_rank_world()
        ctx0 = w.contexts[0]
        got = []
        w.conduit.send_am(ctx0, 0, lambda tctx: got.append("self"))
        ctx0.progress()
        assert got == ["self"]

    def test_am_ordering_preserved(self):
        w = two_rank_world()
        ctx0, ctx1 = w.contexts
        got = []
        for i in range(5):
            w.conduit.send_am(ctx0, 1, lambda t, i=i: got.append(i))
        ctx1.progress()
        assert got == [0, 1, 2, 3, 4]

    def test_arrival_advances_receiver_clock(self):
        w = two_rank_world()
        ctx0, ctx1 = w.contexts
        ctx0.clock.advance(10_000)
        w.conduit.send_am(ctx0, 1, lambda t: None)
        assert ctx1.clock.now_ns < 10_000
        ctx1.progress()
        assert ctx1.clock.now_ns >= 10_000  # causality

    def test_invalid_rank_rejected(self):
        w = two_rank_world()
        with pytest.raises(UpcxxError):
            w.conduit.send_am(w.contexts[0], 7, lambda t: None)

    def test_handler_runs_on_target_context(self):
        w = two_rank_world()
        seen = []
        w.conduit.send_am(
            w.contexts[0], 1, lambda tctx: seen.append(tctx.rank)
        )
        w.contexts[1].progress()
        assert seen == [1]


class TestTeam:
    def test_translation(self):
        t = Team([3, 5, 9])
        assert t.rank_n() == 3
        assert t.to_world(1) == 5
        assert t.from_world(9) == 2

    def test_contains(self):
        t = Team([0, 2])
        assert t.contains(2) and not t.contains(1)

    def test_duplicates_rejected(self):
        with pytest.raises(UpcxxError):
            Team([1, 1])

    def test_empty_rejected(self):
        with pytest.raises(UpcxxError):
            Team([])

    def test_out_of_range_translation(self):
        t = Team([0, 1])
        with pytest.raises(UpcxxError):
            t.to_world(2)
        with pytest.raises(UpcxxError):
            t.from_world(5)

    def test_split_by(self):
        t = Team(range(6))
        mapping = {r: (r % 2, r) for r in range(6)}
        evens = t.split_by(mapping, 0)
        odds = t.split_by(mapping, 1)
        assert evens.world_ranks() == (0, 2, 4)
        assert odds.world_ranks() == (1, 3, 5)

    def test_split_key_orders(self):
        t = Team(range(4))
        mapping = {0: (0, 9), 1: (0, 1), 2: (0, 5), 3: (1, 0)}
        sub = t.split_by(mapping, 0)
        assert sub.world_ranks() == (1, 2, 0)

    def test_split_missing_caller_rejected(self):
        t = Team(range(2))
        with pytest.raises(UpcxxError):
            t.split_by({0: (0, 0)}, 1)

    def test_split_method_unsupported(self):
        t = Team(range(2))
        with pytest.raises(NotImplementedError):
            t.split(0, 0, None)

    def test_rank_me_requires_membership(self):
        def body():
            t = Team([0])
            ctx = current_ctx()
            if ctx.rank == 0:
                return t.rank_me(ctx)
            with pytest.raises(UpcxxError):
                t.rank_me(ctx)
            return -1

        res = spmd_run(body, ranks=2)
        assert res.values == [0, -1]
