"""Dedicated tests for ``copy`` across all four locality cases."""

import pytest

from repro import barrier, copy, new_array, progress, rank_me, rput_bulk
from repro.errors import CompletionError
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run
from tests.conftest import ALL_VERSIONS


def serve(ctx, flag="_copy_done"):
    while not getattr(ctx.world, flag, False):
        progress()
        ctx.yield_to_others()


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestLocalLocal:
    def test_same_rank_copy(self, versioned_ctx, version):
        versioned_ctx(version)
        src = new_array("u64", 4)
        dst = new_array("u64", 4)
        rput_bulk([9, 8, 7, 6], src).wait()
        copy(src, dst, 4).wait()
        assert list(dst.local().view(4)) == [9, 8, 7, 6]

    def test_partial_copy_with_offsets(self, versioned_ctx, version):
        versioned_ctx(version)
        src = new_array("u64", 6)
        dst = new_array("u64", 6)
        rput_bulk(list(range(6)), src).wait()
        copy(src + 2, dst + 1, 3).wait()
        assert list(dst.local().view(6)) == [0, 2, 3, 4, 0, 0]


class TestOnNodeCrossRank:
    def test_copy_between_peers(self):
        def body():
            g = new_array("u64", 4)
            if rank_me() == 2:
                g.local().view(4)[:] = [5, 6, 7, 8]
            barrier()
            if rank_me() == 0:
                src = GlobalPtr(2, g.offset, g.ts)
                dst = GlobalPtr(1, g.offset, g.ts)
                copy(src, dst, 4).wait()
            barrier()
            return list(g.local().view(4))

        res = spmd_run(body, ranks=3)
        assert res.values[1] == [5, 6, 7, 8]


class TestOffNode:
    def test_local_to_remote(self):
        def body():
            ctx = current_ctx()
            g = new_array("u64", 3)
            barrier()
            if rank_me() == 0:
                g.local().view(3)[:] = [1, 2, 3]
                copy(g, GlobalPtr(1, g.offset, g.ts), 3).wait()
                ctx.world._copy_done = True
                barrier()
                return None
            serve(ctx)
            barrier()
            return list(g.local().view(3))

        res = spmd_run(body, ranks=2, n_nodes=2, conduit="udp")
        assert res.values[1] == [1, 2, 3]

    def test_remote_to_local(self):
        def body():
            ctx = current_ctx()
            g = new_array("u64", 3)
            if rank_me() == 1:
                g.local().view(3)[:] = [4, 5, 6]
            barrier()
            if rank_me() == 0:
                copy(GlobalPtr(1, g.offset, g.ts), g, 3).wait()
                ctx.world._copy_done = True
                barrier()
                return list(g.local().view(3))
            serve(ctx)
            barrier()
            return None

        res = spmd_run(body, ranks=2, n_nodes=2, conduit="udp")
        assert res.values[0] == [4, 5, 6]

    def test_remote_to_remote_staged(self):
        """Both endpoints off-node: staged through the initiator."""

        def body():
            ctx = current_ctx()
            g = new_array("u64", 3)
            if rank_me() == 2:
                g.local().view(3)[:] = [7, 8, 9]
            barrier()
            if rank_me() == 0:
                src = GlobalPtr(2, g.offset, g.ts)
                dst = GlobalPtr(3, g.offset, g.ts)
                copy(src, dst, 3).wait()
                ctx.world._copy_done = True
                barrier()
                return None
            serve(ctx)
            barrier()
            return list(g.local().view(3))

        # 4 ranks, 4 nodes: ranks 2 and 3 are both remote to rank 0
        res = spmd_run(body, ranks=4, n_nodes=4, conduit="udp")
        assert res.values[3] == [7, 8, 9]

    def test_remote_remote_source_cx_rejected(self):
        def body():
            ctx = current_ctx()
            g = new_array("u64", 2)
            barrier()
            if rank_me() == 0:
                from repro import operation_cx, source_cx

                src = GlobalPtr(2, g.offset, g.ts)
                dst = GlobalPtr(3, g.offset, g.ts)
                with pytest.raises(CompletionError):
                    copy(
                        src, dst, 2,
                        source_cx.as_future() | operation_cx.as_future(),
                    )
            barrier()

        spmd_run(body, ranks=4, n_nodes=4, conduit="udp")
