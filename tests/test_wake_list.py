"""Wake-list vs predicate-scan differential tests (DESIGN.md §11).

``FeatureFlags.sched_wake_list`` replaces the scheduler's per-switch
blocked-predicate scan with event-driven wake lists.  The design claim is
*bit-identity*: picks, promotions, virtual clocks, and switch traces are
unchanged — the wake-bit promotion set provably equals the set of blocked
ranks with true predicates, and the masked ring pick equals the scan's
first-visited-ready rank.  These tests diff the two implementations on
blocked-heavy programs (the regime the scan is slow in and the wake list
exists for), on both scheduler substrates, with tracing on.
"""

import dataclasses

import pytest

from repro import barrier_gen, current_ctx, rank_me
from repro.errors import DeadlockError
from repro.fuzz import MODES, generate_program
from repro.fuzz.runner import run_program
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import spmd_run
from repro.runtime.switchpoints import BlockUntil
from repro.sim.costmodel import CostAction


def _flags(**kw):
    return dataclasses.replace(flags_for(Version.V2021_3_6_EAGER), **kw)


def _barrier_storm_body(rounds: int):
    """Barrier-dense program with staggered arrivals: every rank parks at
    every barrier (except the last arrival), so each round exercises the
    blocked-rank machinery of whichever pick implementation is active."""
    ctx = current_ctx()
    me = rank_me()
    for k in range(rounds):
        # uneven local work → genuinely staggered arrival order that also
        # rotates across rounds
        ctx.charge(CostAction.FUNCTION_CALL, 1 + ((me + k) % 5) * 7)
        yield from barrier_gen()
    return ctx.clock.now_ns


def _run_traced(body, *, ranks, flags, args=(), **kw):
    trace = []
    res = spmd_run(
        body, ranks=ranks, flags=flags, args=args, switch_trace=trace, **kw
    )
    clocks = [c.clock.now_ns for c in res.world.contexts]
    return res.values, clocks, res.world.sched_switches, trace, res


class TestTraceBitIdentity:
    """The headline regression: switch traces (every pick, block, yield)
    diff clean between wake-list and scan on barrier-dense programs."""

    @pytest.mark.parametrize("event_loop", [False, True])
    @pytest.mark.parametrize("ranks", [2, 5, 16])
    def test_barrier_storm_traces_identical(self, ranks, event_loop):
        base = _flags(sched_event_loop=event_loop)
        out_scan = _run_traced(
            _barrier_storm_body, ranks=ranks, args=(6,),
            flags=dataclasses.replace(base, sched_wake_list=False),
        )
        out_wake = _run_traced(
            _barrier_storm_body, ranks=ranks, args=(6,),
            flags=dataclasses.replace(base, sched_wake_list=True),
        )
        # values, clocks, switch count, and the full decision trace
        assert out_wake[:4] == out_scan[:4]
        # the trace is non-trivial: blocked picks actually happened
        assert any(ev[0] == "block" for ev in out_wake[3])

    @pytest.mark.parametrize("seed", [3, 11, 27, 40])
    def test_fuzz_program_traces_identical(self, seed):
        """Seeded fuzz programs (now blocked-heavy: spins + mid-phase
        barriers) diff clean with tracing on."""
        from repro.fuzz.runner import _fuzz_body

        program = generate_program(seed)
        kw = dict(
            ranks=program.ranks, machine="generic",
            conduit=program.conduit, n_nodes=program.n_nodes,
            seed=program.seed, args=(program,),
        )
        out_scan = _run_traced(
            _fuzz_body, flags=_flags(sched_wake_list=False), **kw
        )
        out_wake = _run_traced(
            _fuzz_body, flags=_flags(sched_wake_list=True), **kw
        )
        assert out_wake[:4] == out_scan[:4]

    @pytest.mark.parametrize("seed", [2, 9])
    def test_fuzz_outcomes_identical_across_modes(self, seed):
        """FuzzOutcome equality (tables, values, completions, clocks) for
        wake-list vs scan under every fuzz mode on both substrates."""
        program = generate_program(seed)
        for mode in MODES:
            for scheduler in ("thread", "event"):
                base = run_program(program, mode, scheduler)
                # run_program resolves flags internally; rebuild with the
                # scan forced via the runner's flag hook
                from repro.fuzz.runner import mode_flags
                from repro.fuzz.runner import _fuzz_body

                version, flags = mode_flags(mode)
                if scheduler == "event":
                    flags = flags.replace(sched_event_loop=True)
                res = spmd_run(
                    _fuzz_body, args=(program,), ranks=program.ranks,
                    version=version, machine="generic",
                    conduit=program.conduit, n_nodes=program.n_nodes,
                    seed=program.seed,
                    flags=flags.replace(sched_wake_list=False),
                )
                scan = (
                    tuple(v[0] for v in res.values),
                    tuple(v[1] for v in res.values),
                    tuple(v[2] for v in res.values),
                    tuple(v[3] for v in res.values),
                )
                assert scan == (
                    base.tables, base.values, base.completions,
                    base.clock_ns,
                )


class TestUnkeyedFallback:
    """Blocks without a recognized wake key must drop the scheduler back
    to the exact legacy predicate scan (and recover once they wake)."""

    @pytest.mark.parametrize("event_loop", [False, True])
    def test_unkeyed_block_runs_and_matches_scan(self, event_loop):
        def body():
            ctx = current_ctx()
            box = ctx.world.shared  # type: ignore[attr-defined]
            me = rank_me()
            if me == 0:
                # keyed block (barrier) while rank 1 is unkeyed-parked
                yield from barrier_gen()
                box.append("a")
                yield BlockUntil(lambda: len(box) == 2)
                return box[-1]
            yield from barrier_gen()
            yield BlockUntil(lambda: len(box) == 1)
            box.append("b")
            return box[0]

        def run(flags):
            trace = []

            def wrapped():
                ctx = current_ctx()
                if not hasattr(ctx.world, "shared"):
                    ctx.world.shared = []  # type: ignore[attr-defined]
                return (yield from body())

            r = spmd_run(wrapped, ranks=2, flags=flags, switch_trace=trace)
            return r.values, trace

        base = _flags(sched_event_loop=event_loop)
        v_scan, t_scan = run(
            dataclasses.replace(base, sched_wake_list=False)
        )
        v_wake, t_wake = run(
            dataclasses.replace(base, sched_wake_list=True)
        )
        assert v_wake == v_scan == ["b", "a"]
        assert t_wake == t_scan

    def test_unkeyed_count_restores_masked_path(self):
        """After an unkeyed waiter wakes, `_unkeyed` returns to zero and
        the masked pick takes over again — observable as a clean final
        scheduler state."""
        def body():
            ctx = current_ctx()
            box = ctx.world.shared  # type: ignore[attr-defined]
            if rank_me() == 0:
                box.append(1)
            else:
                yield BlockUntil(lambda: len(box) == 1)
            yield from barrier_gen()
            return len(box)

        def wrapped():
            ctx = current_ctx()
            if not hasattr(ctx.world, "shared"):
                ctx.world.shared = []  # type: ignore[attr-defined]
            return (yield from body())

        r = spmd_run(wrapped, ranks=3, flags=_flags(sched_event_loop=True))
        sched = r.world.scheduler
        assert sched._unkeyed == 0
        assert sched._blocked == 0


class TestSchedulerStateInvariants:
    """After any run, the wake-list bookkeeping must be fully drained:
    no leaked wake registrations, no stale bits."""

    @pytest.mark.parametrize("event_loop", [False, True])
    def test_masks_clean_after_success(self, event_loop):
        r = spmd_run(
            _barrier_storm_body, ranks=8, args=(4,),
            flags=_flags(sched_event_loop=event_loop),
        )
        sched = r.world.scheduler
        assert sched._ready_mask == 0  # every rank finished (_DONE)
        assert sched._wake_mask == 0
        assert sched._keyed_mask == 0
        assert sched._incoming_waiters == 0
        assert sched._epoch_waiters == 0
        assert sched._unkeyed == 0
        assert sched._blocked == 0

    @pytest.mark.parametrize("event_loop", [False, True])
    def test_deadlock_identical_and_masks_drained(self, event_loop):
        def body():
            if rank_me() == 0:
                return "done"
            yield from barrier_gen()  # never completes: rank 0 left

        base = _flags(sched_event_loop=event_loop)
        msgs = []
        for wake_list in (False, True):
            with pytest.raises(DeadlockError) as ei:
                spmd_run(
                    body, ranks=3,
                    flags=dataclasses.replace(
                        base, sched_wake_list=wake_list
                    ),
                )
            msgs.append(str(ei.value))
        assert msgs[0] == msgs[1]

    def test_cell_wake_generation_guard(self):
        """A rank that blocks on one future, is woken by an incoming AM,
        and then blocks on a *different* future must not be woken by the
        first cell's late fire (the stale-generation guard)."""
        from repro import rget, rpc
        from repro.memory.global_ptr import GlobalPtr
        from repro import new_array

        def body():
            ctx = current_ctx()
            me = rank_me()
            arr = new_array("u64", 4)
            bases = [GlobalPtr(r, arr.offset, arr.ts) for r in range(2)]
            yield from barrier_gen()
            if me == 0:
                # two successive blocking waits on different cells, with
                # AM traffic arriving between them
                v1 = yield from rget(bases[1] + 0).wait_gen()
                v2 = yield from rget(bases[1] + 1).wait_gen()
                yield from barrier_gen()
                return (int(v1), int(v2))
            got = yield from rpc(0, lambda x: x + 1, 41).wait_gen()
            yield from barrier_gen()
            return got

        base = _flags(sched_event_loop=True)
        tr_scan, tr_wake = [], []
        r_scan = spmd_run(
            body, ranks=2, conduit="udp", n_nodes=2,
            flags=dataclasses.replace(base, sched_wake_list=False),
            switch_trace=tr_scan,
        )
        r_wake = spmd_run(
            body, ranks=2, conduit="udp", n_nodes=2,
            flags=dataclasses.replace(base, sched_wake_list=True),
            switch_trace=tr_wake,
        )
        assert r_wake.values == r_scan.values
        assert tr_wake == tr_scan
