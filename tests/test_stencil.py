"""Tests for the Jacobi stencil application (the negative control)."""

import numpy as np
import pytest

from repro.apps.stencil import StencilConfig, run_stencil, serial_jacobi
from repro.errors import UpcxxError
from repro.runtime.config import Version
from tests.conftest import ALL_VERSIONS


class TestSerialOracle:
    def test_boundary_propagation(self):
        cfg = StencilConfig(n=8, iterations=1)
        u = serial_jacobi(cfg)
        assert u[0] == pytest.approx(0.5)  # half the left boundary
        assert u[-1] == pytest.approx(0.0)

    def test_converges_to_linear_profile(self):
        cfg = StencilConfig(n=8, iterations=2000)
        u = serial_jacobi(cfg)
        expected = np.linspace(1.0, 0.0, 10)[1:-1]
        assert np.allclose(u, expected, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            StencilConfig(n=2)
        with pytest.raises(ValueError):
            StencilConfig(iterations=0)


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestDistributedCorrectness:
    def test_matches_serial(self, version):
        cfg = StencilConfig(n=64, iterations=12)
        r = run_stencil(cfg, ranks=4, version=version, machine="generic")
        assert r.matches_serial

    def test_single_rank(self, version):
        cfg = StencilConfig(n=32, iterations=5)
        r = run_stencil(cfg, ranks=1, version=version, machine="generic")
        assert r.matches_serial


class TestDistributedShapes:
    def test_uneven_split_rejected(self):
        with pytest.raises(UpcxxError):
            run_stencil(StencilConfig(n=10, iterations=1), ranks=3)

    def test_many_ranks(self):
        cfg = StencilConfig(n=128, iterations=8)
        r = run_stencil(cfg, ranks=8, machine="generic")
        assert r.matches_serial

    def test_negative_control_small_gain(self):
        """Coarse-grained halo exchange: eager gains little — the
        complementary regime to GUPS."""
        cfg = StencilConfig(n=1024, iterations=10)
        td = run_stencil(
            cfg, ranks=4, version=Version.V2021_3_6_DEFER, machine="intel"
        ).solve_ns
        te = run_stencil(
            cfg, ranks=4, version=Version.V2021_3_6_EAGER, machine="intel"
        ).solve_ns
        gain = td / te - 1
        assert 0 <= gain < 0.08

    def test_gain_shrinks_with_block_size(self):
        """The eager advantage per iteration is O(1) while compute is
        O(block): doubling the block must shrink the relative gain."""
        gains = []
        for n in (128, 2048):
            cfg = StencilConfig(n=n, iterations=8)
            td = run_stencil(
                cfg, ranks=4, version=Version.V2021_3_6_DEFER,
                machine="intel",
            ).solve_ns
            te = run_stencil(
                cfg, ranks=4, version=Version.V2021_3_6_EAGER,
                machine="intel",
            ).solve_ns
            gains.append(td / te - 1)
        assert gains[1] < gains[0]
