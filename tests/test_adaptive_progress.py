"""The adaptive progress controller: control law, engine integration,
latency guarantee, wiring, stats rollup, and the GUPS variant.

The controller (``repro.runtime.adaptive_progress``) must:

* validate its knobs at ``FeatureFlags`` construction (floor/ceiling
  consistency only once ``progress_adaptive`` binds the range);
* converge the drain cap toward observed queue depth and the poll
  interval toward the observed empty-poll rate (EWMA control law);
* keep the engine dispatching FIFO under the cap, with aged entries
  exempt (the ``progress_max_age_ticks`` latency guarantee), and retire
  aged entries at enqueue-time engine activity;
* elide provably-empty polls as cheap ``PROGRESS_POLL_SKIP`` charges;
* be inert with the flag off — no controller, no new charges, static
  drain-until-quiescent behaviour bit-identical to the seed;
* roll up per-rank snapshots through ``sim.stats`` and render via
  ``bench/report``, and carry the trade on the ``prog_adaptive`` GUPS
  variant (lower mean notification gap than static defer without more
  ``PROGRESS_POLL`` charge).
"""

import pytest

from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_progress_report
from repro.errors import UpcxxError
from repro.runtime.adaptive_progress import (
    TRAJECTORY_CAP,
    AdaptiveProgressController,
    ProgressDecision,
)
from repro.runtime.config import flags_for
from repro.runtime.runtime import spmd_run
from repro.sim.costmodel import CostAction
from repro.sim.stats import ProgressStats, progress_snapshots, progress_stats
from tests.conftest import VD, VE, obs_flags, progress_adaptive_flags


# ---------------------------------------------------------------------------
# flag validation
# ---------------------------------------------------------------------------


class TestFlagValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(progress_min_batch=0),
            dict(progress_max_batch=0),
            dict(progress_min_poll_interval=0),
            dict(progress_max_poll_interval=-1),
            dict(progress_max_age_ticks=0.0),
            dict(progress_max_age_ticks=-5.0),
            dict(progress_ewma_alpha=0.0),
            dict(progress_ewma_alpha=1.5),
        ],
    )
    def test_bad_knobs_rejected_at_construction(self, bad):
        with pytest.raises(UpcxxError):
            flags_for(VD).replace(**bad)

    def test_floor_above_ceiling_rejected_only_when_adaptive(self):
        # a static config may carry any floor/ceiling combination ...
        flags_for(VD).replace(progress_min_batch=64, progress_max_batch=8)
        flags_for(VD).replace(
            progress_min_poll_interval=32, progress_max_poll_interval=4
        )
        # ... but flipping the flag on re-validates the range
        with pytest.raises(UpcxxError, match="progress_min_batch"):
            flags_for(VD).replace(
                progress_adaptive=True,
                progress_min_batch=64,
                progress_max_batch=8,
            )
        with pytest.raises(UpcxxError, match="progress_min_poll_interval"):
            flags_for(VD).replace(
                progress_adaptive=True,
                progress_min_poll_interval=32,
                progress_max_poll_interval=4,
            )

    def test_defaults_valid_for_every_build(self):
        for v in (VD, VE):
            assert flags_for(v).replace(progress_adaptive=True)


# ---------------------------------------------------------------------------
# controller unit behaviour
# ---------------------------------------------------------------------------


def make_controller(**kw):
    return AdaptiveProgressController(progress_adaptive_flags(**kw))


class TestControlLaw:
    def test_initial_outputs_are_static_like(self):
        ctl = make_controller()
        assert ctl.drain_cap == ctl.ceil_batch
        assert ctl.poll_interval == ctl.floor_interval

    def test_depth_ewma_sizes_the_cap(self):
        ctl = make_controller(progress_min_batch=2, progress_max_batch=64)
        # deep queues drive the cap up (2x slack over the EWMA depth)
        for _ in range(20):
            cap = ctl.on_poll(depth=10)
            ctl.on_drained(0.0, cap, 0, True)
        assert ctl.drain_cap == 21  # 1 + 2 * 10
        # an idle stream drives it back to the floor
        for _ in range(40):
            cap = ctl.on_poll(depth=0)
            ctl.on_drained(0.0, 0, 0, False)
        assert ctl.drain_cap == ctl.floor_batch

    def test_cap_clamps_to_ceiling(self):
        ctl = make_controller(progress_max_batch=8)
        assert ctl.on_poll(depth=1000) == 8

    def test_busy_stream_keeps_interval_one(self):
        ctl = make_controller()
        for _ in range(30):
            ctl.on_poll(depth=3)
            ctl.on_drained(0.0, 3, 0, True)
        assert ctl.poll_interval == 1
        assert not ctl.may_skip()

    def test_idle_stream_grows_interval_to_ceiling(self):
        ctl = make_controller(progress_max_poll_interval=16)
        for _ in range(60):
            ctl.on_poll(depth=0)
            ctl.on_drained(0.0, 0, 0, False)
        assert ctl.poll_interval == 16

    def test_skip_cadence_forces_periodic_full_poll(self):
        ctl = make_controller()
        # drive the interval to 4 exactly: yield EWMA of 1/4
        while ctl.poll_interval < 4:
            ctl.on_poll(depth=0)
            ctl.on_drained(0.0, 0, 0, False)
        interval = ctl.poll_interval
        skips = 0
        while ctl.may_skip():
            ctl.on_skip()
            skips += 1
        assert skips == interval - 1
        # a full poll resets the budget
        ctl.on_poll(depth=0)
        assert ctl.may_skip() == (ctl.poll_interval > 1)

    def test_trajectory_records_changes_only(self):
        ctl = make_controller()
        for _ in range(50):
            ctl.on_poll(depth=5)
            ctl.on_drained(0.0, 5, 0, True)
        decisions = list(ctl.trajectory)
        assert decisions
        for a, b in zip(decisions, decisions[1:]):
            assert (a.drain_cap, a.poll_interval) != (
                b.drain_cap, b.poll_interval
            )
        assert all(isinstance(d, ProgressDecision) for d in decisions)
        assert len(decisions) <= TRAJECTORY_CAP

    def test_snapshot_carries_counters(self):
        ctl = make_controller()
        ctl.on_poll(depth=4)
        ctl.on_drained(10.0, 4, 2, True)
        ctl.on_skip()
        ctl.on_aged_drain(3)
        snap = ctl.snapshot(rank=7)
        assert snap.rank == 7
        assert snap.full_polls == 1
        assert snap.skipped_polls == 1
        assert snap.dispatched == 7  # 4 drained + 3 aged
        assert snap.capped_polls == 1
        assert snap.aged_drains == 1
        assert snap.aged_dispatched == 3
        assert snap.trajectory
        assert 0.0 < snap.elision_ratio < 1.0

    def test_elision_ratio_zero_before_any_call(self):
        assert make_controller().snapshot(rank=0).elision_ratio == 0.0


# ---------------------------------------------------------------------------
# engine integration (single-rank world with the controller wired)
# ---------------------------------------------------------------------------


@pytest.fixture
def actx(versioned_ctx):
    """A single-rank context with tight adaptive-progress knobs."""
    return versioned_ctx(VD, flags=progress_adaptive_flags())


class TestEngineIntegration:
    def test_capped_fifo_drain(self, actx):
        order = []
        eng = actx.progress_engine
        for i in range(20):
            eng.enqueue_deferred(lambda i=i: order.append(i))
        per_call = []
        while eng.has_pending():
            before = actx.costs.count(CostAction.PROGRESS_DISPATCH)
            assert actx.progress()
            per_call.append(
                actx.costs.count(CostAction.PROGRESS_DISPATCH) - before
            )
        assert order == list(range(20))
        assert sum(per_call) == 20
        assert len(per_call) > 1  # the cap actually split the backlog
        assert all(n <= 8 for n in per_call)  # progress_max_batch

    def test_capped_poll_still_reports_work_pending(self, actx):
        eng = actx.progress_engine
        for i in range(20):
            eng.enqueue_deferred(lambda: None)
        assert actx.progress()  # capped: leftovers remain
        assert eng.has_pending()
        assert actx.has_incoming()  # wait loops keep re-entering

    def test_aged_entries_bypass_the_cap(self, actx):
        eng = actx.progress_engine
        for i in range(20):
            eng.enqueue_deferred(lambda: None)
        actx.clock.advance(10_000.0)  # every entry far past the age bound
        assert actx.progress()
        assert not eng.has_pending()  # one poll drained all 20

    def test_enqueue_time_aged_mini_drain(self, actx):
        eng = actx.progress_engine
        fired = []
        eng.enqueue_deferred(lambda: fired.append("old"))
        actx.clock.advance(10_000.0)
        polls_before = actx.costs.count(CostAction.PROGRESS_POLL)
        eng.enqueue_deferred(lambda: fired.append("new"))
        assert fired == ["old"]  # retired by the enqueue, not a poll
        assert eng.pending_deferred() == 1
        assert actx.costs.count(CostAction.PROGRESS_POLL) == polls_before + 1
        ctl = actx.progress_ctl
        assert ctl.aged_drains == 1 and ctl.aged_dispatched == 1

    def test_enqueue_lpc_also_retires_aged_entries(self, actx):
        eng = actx.progress_engine
        fired = []
        eng.enqueue_deferred(lambda: fired.append("old"))
        actx.clock.advance(10_000.0)
        eng.enqueue_lpc(lambda: fired.append("lpc"))
        assert fired == ["old"]

    def test_age_invariant_across_engine_activity(self, actx):
        """Immediately after any enqueue or progress call, nothing queued
        is older than the bound (the externally checkable latency
        guarantee; between activities entries age passively — the
        guarantee is that the next engine touch retires them)."""
        eng = actx.progress_engine

        def age_ok():
            age = eng.oldest_pending_age_ns()
            return age is None or age < actx.flags.progress_max_age_ticks

        for step in range(50):
            eng.enqueue_deferred(lambda: None)
            assert age_ok()
            actx.clock.advance(300.0 * (step % 5))
            if step % 7 == 0:
                actx.progress()
                assert age_ok()

    def test_empty_polls_become_cheap_skips(self, actx):
        for _ in range(40):
            actx.progress()
        skips = actx.costs.count(CostAction.PROGRESS_POLL_SKIP)
        polls = actx.costs.count(CostAction.PROGRESS_POLL)
        assert skips > 0
        assert polls + skips == 40
        assert polls < 40

    def test_skip_returns_false_and_dispatches_nothing(self, actx):
        # drive the interval up so skips are allowed, then verify a skip
        for _ in range(30):
            actx.progress()
        assert actx.progress_ctl.may_skip()
        before = actx.costs.count(CostAction.PROGRESS_DISPATCH)
        assert actx.progress() is False
        assert actx.costs.count(CostAction.PROGRESS_DISPATCH) == before

    def test_pending_work_forbids_skipping(self, actx):
        for _ in range(30):
            actx.progress()  # grow the interval
        fired = []
        actx.progress_engine.enqueue_deferred(lambda: fired.append(1))
        assert actx.progress()  # must be a full poll despite the cadence
        assert fired == [1]

    def test_adapt_charged_once_per_full_poll(self, actx):
        for _ in range(25):
            actx.progress()
        assert actx.costs.count(CostAction.PROGRESS_ADAPT) == actx.costs.count(
            CostAction.PROGRESS_POLL
        )

    def test_reentrant_progress_still_noop(self, actx):
        seen = []
        actx.progress_engine.enqueue_deferred(
            lambda: seen.append(actx.progress())
        )
        assert actx.progress()
        assert seen == [False]


class TestFlagOffInertness:
    def test_no_controller_and_no_new_charges(self, versioned_ctx):
        ctx = versioned_ctx(VD)
        assert ctx.progress_ctl is None
        for _ in range(10):
            ctx.progress()
        ctx.progress_engine.enqueue_deferred(lambda: None)
        ctx.progress()
        assert ctx.costs.count(CostAction.PROGRESS_ADAPT) == 0
        assert ctx.costs.count(CostAction.PROGRESS_POLL_SKIP) == 0
        assert ctx.costs.count(CostAction.PROGRESS_POLL) == 11

    def test_gups_figures_unchanged_by_knob_values(self):
        """With the flag off the knob values are dead config: any pair of
        off-flag configurations produces bit-identical figures."""
        cfg = GupsConfig(variant="rma_promise", table_log2=8,
                         updates_per_rank=32, batch=8)
        base = run_gups(cfg, ranks=4, version=VD, machine="generic")
        tweaked = run_gups(
            cfg, ranks=4, version=VD, machine="generic",
            flags=flags_for(VD).replace(
                progress_min_batch=1, progress_max_batch=3,
                progress_max_age_ticks=1.0,
            ),
        )
        assert base.solve_ns == tweaked.solve_ns
        assert base.checksum == tweaked.checksum
        assert base.progress_polls == tweaked.progress_polls
        assert base.progress_poll_skips == 0
        assert base.prog_stats is None


# ---------------------------------------------------------------------------
# wiring, stats rollup, report rendering
# ---------------------------------------------------------------------------


def _poll_a_lot():
    from repro import barrier, current_ctx

    ctx = current_ctx()
    for _ in range(50):
        ctx.progress()
    barrier()
    return ctx.progress_ctl is not None


class TestWiringAndStats:
    def test_every_rank_gets_a_controller(self):
        res = spmd_run(
            _poll_a_lot, ranks=4, version=VD,
            flags=progress_adaptive_flags(),
        )
        assert all(res.values)
        snaps = progress_snapshots(res.world)
        assert len(snaps) == 4
        assert {s.rank for s in snaps} == {0, 1, 2, 3}

    def test_stats_rollup_sums_ranks(self):
        res = spmd_run(
            _poll_a_lot, ranks=4, version=VD,
            flags=progress_adaptive_flags(),
        )
        snaps = progress_snapshots(res.world)
        stats = progress_stats(res.world)
        assert isinstance(stats, ProgressStats)
        assert stats.ranks == 4
        assert stats.full_polls == sum(s.full_polls for s in snaps)
        assert stats.skipped_polls == sum(s.skipped_polls for s in snaps)
        assert stats.skipped_polls > 0
        assert 0.0 < stats.elision_ratio < 1.0

    def test_stats_none_when_off(self):
        res = spmd_run(_poll_a_lot, ranks=2, version=VD)
        assert progress_snapshots(res.world) == []
        assert progress_stats(res.world) is None
        assert not any(res.values)

    def test_report_renders(self):
        res = spmd_run(
            _poll_a_lot, ranks=2, version=VD,
            flags=progress_adaptive_flags(),
        )
        text = format_progress_report("progress", progress_stats(res.world))
        assert "full polls" in text
        assert "skipped polls" in text
        assert "elision ratio" in text
        assert "aged mini-drains" in text


# ---------------------------------------------------------------------------
# the GUPS variant: the latency/overhead trade end to end
# ---------------------------------------------------------------------------


class TestGupsVariant:
    def _run(self, flags):
        cfg = GupsConfig(variant="prog_adaptive", table_log2=10,
                         updates_per_rank=96, batch=32)
        return run_gups(cfg, ranks=4, version=VD, machine="intel",
                        flags=flags)

    def test_exact_under_static_and_adaptive(self):
        static = self._run(obs_flags(VD))
        adaptive = self._run(
            progress_adaptive_flags(obs_spans=True,
                                    progress_max_age_ticks=4000.0)
        )
        assert static.matches_oracle
        assert adaptive.matches_oracle

    def test_adaptive_cuts_gap_without_more_poll_charge(self):
        static = self._run(obs_flags(VD))
        adaptive = self._run(
            progress_adaptive_flags(obs_spans=True,
                                    progress_max_age_ticks=4000.0)
        )
        key = ("defer", "pshm")
        gap_static = static.obs_stats.gaps[key].hist.mean
        gap_adaptive = adaptive.obs_stats.gaps[key].hist.mean
        assert gap_adaptive < gap_static
        assert adaptive.progress_polls <= static.progress_polls
        assert adaptive.progress_poll_skips > 0
        assert adaptive.prog_stats.aged_dispatched > 0
