"""Adaptive AM-bundle batching: online threshold control, the age-bound
flush latency guarantee, bundle delta-compression, and equivalence.

The adaptive layer (``repro.gasnet.adaptive`` + the aggregator/conduit
hooks) must:

* converge to the threshold ceiling under dense synthetic arrivals and to
  the floor under sparse ones (per-destination EWMA control law);
* flush a stranded buffer at the next conduit activity or progress poll
  once its oldest entry outlives ``agg_max_age_ticks``;
* deliver strictly lower mean entry-parking latency than static
  thresholds on sparse traffic while matching the static injection
  reduction on dense traffic (the PR acceptance criteria);
* leave handler execution bit-identical under delta-compression (a wire
  footprint model change only);
* keep deferred and eager builds observing identical final states with
  adaptive + compression enabled;
* be inert with the flags off — no controller, no extra charges.
"""

import numpy as np
import pytest

from repro.apps.gups import GupsConfig, run_gups
from repro.bench.report import format_aggregation_report
from repro.errors import UpcxxError
from repro.gasnet.adaptive import AdaptiveController
from repro.gasnet.aggregator import (
    BUNDLE_HEADER_BYTES,
    ENTRY_HEADER_BYTES,
    RUN_CONT_HEADER_BYTES,
    AggEntry,
    bundle_framing,
)
from repro.runtime.config import RuntimeConfig, Version, flags_for
from repro.runtime.runtime import build_world, spmd_run
from repro.sim.costmodel import CostAction
from repro.sim.stats import aggregation_snapshots, aggregation_stats

from tests.conftest import (
    VD,
    VE,
    adaptive_flags,
    adaptive_world,
    send_agg_am as send,
)


# ---------------------------------------------------------------------------
# flag validation (at FeatureFlags construction, not first use)
# ---------------------------------------------------------------------------


class TestFlagValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(agg_max_entries=0),
            dict(agg_max_entries=-3),
            dict(agg_max_bytes=0),
            dict(agg_max_bytes=-1),
            dict(agg_min_entries=0),
            dict(agg_min_bytes=-2),
            dict(agg_max_age_ticks=0.0),
            dict(agg_max_age_ticks=-50.0),
            dict(agg_ewma_alpha=0.0),
            dict(agg_ewma_alpha=1.5),
        ],
    )
    def test_bad_knobs_rejected_at_construction(self, bad):
        """Zero/negative knobs would make a buffer never flush; they must
        fail when the flags value is *built*, before any world exists."""
        with pytest.raises(UpcxxError):
            flags_for(VE).replace(**bad)

    def test_rejected_even_with_aggregation_off(self):
        """The value is invalid per se, not merely when consumed."""
        with pytest.raises(UpcxxError):
            flags_for(VE).replace(am_aggregation=False, agg_max_bytes=0)

    def test_inverted_bounds_rejected_when_adaptive(self):
        with pytest.raises(UpcxxError):
            flags_for(VE).replace(
                am_aggregation=True, agg_adaptive=True,
                agg_min_entries=16, agg_max_entries=8,
            )
        with pytest.raises(UpcxxError):
            flags_for(VE).replace(
                am_aggregation=True, agg_adaptive=True,
                agg_min_bytes=512, agg_max_bytes=256,
            )

    def test_static_config_may_use_tiny_byte_threshold(self):
        """Without the controller the floors are dormant: a static config
        below the adaptive floor defaults stays legal (PR-1 behaviour)."""
        fl = flags_for(VE).replace(am_aggregation=True, agg_max_bytes=64)
        assert fl.agg_max_bytes == 64


# ---------------------------------------------------------------------------
# controller convergence
# ---------------------------------------------------------------------------


class TestControllerConvergence:
    def test_control_law_constant_gap(self):
        """E* = clamp(floor, 1 + A/g, ceiling) for a steady arrival gap."""
        fl = adaptive_flags(agg_max_age_ticks=1000.0)
        ctl = AdaptiveController(fl)
        t = 0.0
        for _ in range(20):
            ctl.observe(t, dst_rank=2, nbytes=16)
            t += 250.0  # g = 250 -> E* = 1 + 1000/250 = 5
        assert ctl.thresholds(2)[0] == 5

    def test_dense_converges_to_ceiling(self):
        w = adaptive_world(agg_max_age_ticks=100_000.0)
        ctx0 = w.contexts[0]
        for _ in range(32):
            send(w, 0, 2)  # gaps are just the append charges (~10 ns)
        agg = ctx0.am_agg
        assert agg.thresholds_for(2)[0] == 8  # ceiling
        s = agg.stats()
        # every flush closed a full ceiling-depth bundle
        assert set(s.bundle_size_hist) == {8}
        assert s.flush_reasons.get("entries") == 4

    def test_sparse_converges_to_floor(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        for _ in range(24):
            ctx0.clock.advance(600.0)  # g ~ 600 -> E* = int(1+1.67) = 2
            send(w, 0, 2)
        assert ctx0.am_agg.thresholds_for(2)[0] == 2  # floor

    def test_trajectory_records_changes(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        for _ in range(8):
            ctx0.clock.advance(600.0)
            send(w, 0, 2)
        traj = ctx0.am_agg.stats().threshold_trajectory
        assert traj  # ceiling -> floor transition was recorded
        assert traj[-1].dst_rank == 2
        assert traj[-1].max_entries == 2
        assert ctx0.am_agg.stats().adaptive_updates == 8

    def test_byte_threshold_tracks_payload_size(self):
        """B* carries 2x slack over E* x s_hat, clamped to the bounds."""
        fl = adaptive_flags(agg_max_age_ticks=1000.0)
        ctl = AdaptiveController(fl)
        t = 0.0
        for _ in range(20):
            ctl.observe(t, dst_rank=2, nbytes=100)
            t += 250.0
        entries, nbytes = ctl.thresholds(2)
        assert entries == 5
        assert nbytes == 1000  # 2 * 5 * 100, inside [64, 4096]

    def test_estimators_are_per_destination(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        for _ in range(16):
            send(w, 0, 2)  # rank 2 sees bursts: half its gaps are tiny
            send(w, 0, 2)
            ctx0.clock.advance(600.0)
            send(w, 0, 3)  # rank 3 only ever sees the long gap
        agg = ctx0.am_agg
        assert agg.thresholds_for(3)[0] == 2
        assert agg.thresholds_for(2)[0] > 2

    def test_adaptive_off_means_no_controller(self):
        w = build_world(
            RuntimeConfig(
                conduit="ibv",
                flags=flags_for(VE).replace(am_aggregation=True),
            ),
            ranks=4,
            n_nodes=2,
        )
        ctx0 = w.contexts[0]
        assert ctx0.am_agg.controller is None
        send(w, 0, 2)
        assert ctx0.costs.count(CostAction.AM_AGG_ADAPT) == 0
        assert ctx0.am_agg.stats().threshold_trajectory == ()


# ---------------------------------------------------------------------------
# age-bound flush
# ---------------------------------------------------------------------------


class TestAgeBound:
    def test_aged_buffer_flushed_by_next_send(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        send(w, 0, 2)
        assert w.conduit.pending_for(2) == 0  # parked
        ctx0.clock.advance(1500.0)
        # any conduit activity retires the stale buffer — here an on-node,
        # non-aggregatable AM to a different rank
        w.conduit.send_am(ctx0, 1, lambda t: None)
        assert w.conduit.pending_for(2) == 1
        s = ctx0.am_agg.stats()
        assert s.age_flushes == 1
        assert s.flush_reasons.get("age") == 1

    def test_aged_buffer_flushed_by_poll(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        send(w, 0, 2)
        ctx0.clock.advance(2000.0)
        w.conduit.poll(ctx0)  # conduit activity on the sender side
        assert w.conduit.pending_for(2) == 1
        assert ctx0.am_agg.age_flushes == 1

    def test_fresh_buffer_not_age_flushed(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        send(w, 0, 2)
        ctx0.clock.advance(100.0)  # well inside the bound
        w.conduit.send_am(ctx0, 1, lambda t: None)
        assert w.conduit.pending_for(2) == 0
        assert ctx0.am_agg.age_flushes == 0

    def test_latency_guarantee(self):
        """Parking latency of a stranded entry is bounded by the age knob
        plus the gap to the rank's next conduit action."""
        age, activity_gap = 1000.0, 400.0
        w = adaptive_world(agg_max_age_ticks=age)
        ctx0 = w.contexts[0]
        send(w, 0, 2)
        # the rank keeps polling (conduit activity) every 400 ticks
        for _ in range(100):
            if not ctx0.am_agg.pending_entries(2):
                break
            ctx0.clock.advance(activity_gap)
            w.conduit.poll(ctx0)
        assert ctx0.am_agg.pending_entries(2) == 0
        latency = ctx0.am_agg.stats().parked_ns_total  # the single entry
        assert latency >= age
        assert latency <= age + activity_gap + 1e-9

    def test_no_age_flush_when_adaptive_off(self):
        w = build_world(
            RuntimeConfig(
                conduit="ibv",
                flags=flags_for(VE).replace(am_aggregation=True),
            ),
            ranks=4,
            n_nodes=2,
        )
        ctx0 = w.contexts[0]
        send(w, 0, 2)
        ctx0.clock.advance(1e9)
        w.conduit.send_am(ctx0, 1, lambda t: None)
        assert ctx0.am_agg.pending_entries(2) == 1  # static: parked forever
        assert ctx0.am_agg.flush_aged() == 0


# ---------------------------------------------------------------------------
# acceptance: sparse latency down, dense injections matched
# ---------------------------------------------------------------------------


def _synthetic_run(adaptive: bool, gap_ns: float, n: int = 64):
    """One sender streaming to one off-node dest with a fixed arrival gap;
    returns (mean parked ns, bundles flushed, sender AM_INJECT count)."""
    if adaptive:
        fl = adaptive_flags(agg_max_entries=32, agg_max_age_ticks=20_000.0)
    else:
        fl = flags_for(VE).replace(am_aggregation=True, agg_max_entries=32)
    w = build_world(
        RuntimeConfig(conduit="ibv", flags=fl), ranks=4, n_nodes=2
    )
    ctx0 = w.contexts[0]
    for _ in range(n):
        ctx0.clock.advance(gap_ns)
        send(w, 0, 2)
    ctx0.am_agg.flush_all()  # ship stragglers so every entry is counted
    s = ctx0.am_agg.stats()
    return s.mean_parked_ns, s.bundles_flushed, ctx0.costs.count(
        CostAction.AM_INJECT
    )


class TestAcceptance:
    def test_sparse_mean_parking_latency_strictly_lower(self):
        """Sparse traffic (gap comparable to the age bound): adaptive
        thresholds must park entries for strictly less simulated time
        than the static 32-entry threshold."""
        gap = 5000.0  # E* = int(1 + 20000/5000) = 5 << 32
        static_park, _, _ = _synthetic_run(adaptive=False, gap_ns=gap)
        adaptive_park, bundles, _ = _synthetic_run(adaptive=True, gap_ns=gap)
        assert adaptive_park < static_park
        assert bundles > 2  # actually streamed out, not one giant flush

    def test_dense_injection_reduction_matched(self):
        """Dense traffic: the controller sits at the ceiling, so bundles
        and injections match the static configuration exactly."""
        gap = 50.0  # E* = 1 + 20000/50 = 401 -> clamped to ceiling 32
        _, static_bundles, static_inj = _synthetic_run(
            adaptive=False, gap_ns=gap
        )
        _, adaptive_bundles, adaptive_inj = _synthetic_run(
            adaptive=True, gap_ns=gap
        )
        assert adaptive_bundles == static_bundles
        assert adaptive_inj <= static_inj

    def test_dense_gups_injections_not_worse(self):
        """End to end: the dense GUPS agg run keeps the static injection
        reduction with the controller on."""
        cfg = GupsConfig(
            variant="agg", table_log2=10, updates_per_rank=64, batch=16
        )
        runs = {}
        for adaptive in (False, True):
            fl = flags_for(VE).replace(
                am_aggregation=True, agg_max_entries=16,
                agg_adaptive=adaptive,
            )
            runs[adaptive] = run_gups(
                cfg, ranks=4, n_nodes=2, version=VE, machine="generic",
                conduit="ibv", flags=fl,
            )
            assert runs[adaptive].matches_oracle
        assert runs[True].am_injects <= runs[False].am_injects


# ---------------------------------------------------------------------------
# bundle delta-compression
# ---------------------------------------------------------------------------


class TestCompression:
    def test_framing_homogeneous_run(self):
        entries = [
            AggEntry(lambda t: None, (), 8, "rpc_ff") for _ in range(10)
        ]
        flat, runs, saved = bundle_framing(entries, compress=False)
        assert flat == BUNDLE_HEADER_BYTES + 10 * ENTRY_HEADER_BYTES
        assert (runs, saved) == (10, 0)
        framed, runs, saved = bundle_framing(entries, compress=True)
        assert runs == 1
        assert framed == (
            BUNDLE_HEADER_BYTES
            + ENTRY_HEADER_BYTES
            + 9 * RUN_CONT_HEADER_BYTES
        )
        assert saved == 9 * (ENTRY_HEADER_BYTES - RUN_CONT_HEADER_BYTES)

    def test_framing_mixed_labels(self):
        labels = ["put_req", "put_req", "rpc_ff", "rpc_ff", "put_req"]
        entries = [AggEntry(lambda t: None, (), 8, lb) for lb in labels]
        _, runs, saved = bundle_framing(entries, compress=True)
        assert runs == 3  # put_req x2 | rpc_ff x2 | put_req
        assert saved == 2 * (ENTRY_HEADER_BYTES - RUN_CONT_HEADER_BYTES)

    def test_framing_empty(self):
        assert bundle_framing([], compress=True) == (
            BUNDLE_HEADER_BYTES, 0, 0
        )

    def _world(self, compress):
        fl = flags_for(VE).replace(
            am_aggregation=True, agg_max_entries=8,
            agg_compression=compress,
        )
        return build_world(
            RuntimeConfig(conduit="ibv", flags=fl), ranks=4, n_nodes=2
        )

    def test_roundtrip_handlers_identical(self):
        """Compression shrinks modeled framing only: the receiver runs
        exactly the same handlers in the same order."""
        deliveries = {}
        for compress in (False, True):
            w = self._world(compress)
            got = []
            for i in range(8):
                w.conduit.send_am(
                    w.contexts[0], 2, lambda t, i=i: got.append(i),
                    nbytes=8, label="rpc_ff", aggregatable=True,
                )
            w.contexts[2].progress()
            deliveries[compress] = got
        assert deliveries[False] == deliveries[True] == list(range(8))

    def test_wire_footprint_shrinks(self):
        wires = {}
        for compress in (False, True):
            w = self._world(compress)
            for _ in range(8):
                send(w, 0, 2, nbytes=8, label="rpc_ff")
            msg = w.conduit._inboxes[2]._queue[0]
            wires[compress] = msg.nbytes
        saving = 7 * (ENTRY_HEADER_BYTES - RUN_CONT_HEADER_BYTES)
        assert wires[False] - wires[True] == saving

    def test_compression_cost_and_stats(self):
        w = self._world(True)
        ctx0 = w.contexts[0]
        for _ in range(8):
            send(w, 0, 2, nbytes=8, label="rpc_ff")
        assert ctx0.costs.count(CostAction.AM_BUNDLE_COMPRESS) == 8
        assert ctx0.am_agg.stats().compression_saved_bytes == 7 * (
            ENTRY_HEADER_BYTES - RUN_CONT_HEADER_BYTES
        )

    def test_no_compress_charges_when_off(self):
        w = self._world(False)
        ctx0 = w.contexts[0]
        for _ in range(8):
            send(w, 0, 2, nbytes=8, label="rpc_ff")
        assert ctx0.costs.count(CostAction.AM_BUNDLE_COMPRESS) == 0
        assert ctx0.am_agg.stats().compression_saved_bytes == 0


# ---------------------------------------------------------------------------
# stats surfacing
# ---------------------------------------------------------------------------


class TestStats:
    def test_snapshot_and_world_rollup(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        for _ in range(12):
            ctx0.clock.advance(600.0)
            send(w, 0, 2)
        ctx0.am_agg.flush_all()
        snap = ctx0.am_agg.stats()
        assert snap.rank == 0
        assert snap.appended == 12
        assert snap.entries_flushed == 12
        assert snap.pending_entries == 0
        assert sum(snap.bundle_size_hist.values()) == snap.bundles_flushed
        assert snap.adaptive_updates == 12
        assert snap.mean_parked_ns > 0.0

        world_stats = aggregation_stats(w)
        assert world_stats.appended == 12
        assert world_stats.adaptive_updates == 12
        assert world_stats.threshold_decisions >= 1
        assert world_stats.bundle_size_hist == snap.bundle_size_hist
        assert world_stats.mean_parked_ns == pytest.approx(
            snap.mean_parked_ns
        )
        snaps = aggregation_snapshots(w)
        assert len(snaps) == 4
        assert snaps[0] == snap

    def test_progress_flush_reason_tagged(self):
        w = adaptive_world()
        send(w, 0, 2)
        w.contexts[0].progress()
        reasons = w.contexts[0].am_agg.stats().flush_reasons
        assert reasons.get("progress_entry") == 1

    def test_report_formatting(self):
        w = adaptive_world(agg_max_age_ticks=1000.0)
        ctx0 = w.contexts[0]
        for _ in range(6):
            ctx0.clock.advance(600.0)
            send(w, 0, 2)
        ctx0.am_agg.flush_all()
        text = format_aggregation_report(
            "AM aggregation activity", aggregation_stats(w)
        )
        assert "bundles flushed" in text
        assert "adaptive updates" in text
        assert "framing bytes saved" in text
        assert "mean parked (us)" in text

    def test_gups_result_carries_agg_fields(self):
        cfg = GupsConfig(
            variant="agg", table_log2=10, updates_per_rank=32, batch=8
        )
        fl = adaptive_flags(
            agg_max_entries=16, agg_min_entries=2, agg_compression=True,
            agg_max_age_ticks=131072.0,
        )
        r = run_gups(
            cfg, ranks=4, n_nodes=2, version=VE, machine="generic",
            conduit="ibv", flags=fl,
        )
        assert r.matches_oracle
        assert r.agg_bytes_saved > 0
        assert r.agg_mean_parked_ns >= 0.0


# ---------------------------------------------------------------------------
# semantics equivalence with everything on
# ---------------------------------------------------------------------------


class TestEquivalence:
    def test_gups_defer_eager_identical_with_adaptive_compression(self):
        """The acceptance gate extended to the new flags: deferred and
        eager builds reach identical final tables with adaptive batching
        *and* delta-compression enabled, and match the race-free oracle."""
        cfg = GupsConfig(
            variant="agg", table_log2=10, updates_per_rank=64, batch=16
        )
        tables = {}
        for version in (VD, VE):
            fl = adaptive_flags(
                version, agg_max_entries=16, agg_compression=True,
                agg_max_age_ticks=4096.0,  # tight: age flushes engage
            )
            r = run_gups(
                cfg, ranks=4, n_nodes=2, version=version,
                machine="generic", conduit="ibv", flags=fl,
            )
            assert r.matches_oracle
            assert r.error_fraction == 0.0
            assert r.am_bundles > 0
            tables[version] = r.table
        assert np.array_equal(tables[VD], tables[VE])

    def test_adaptive_compression_vs_flags_off_same_state(self):
        """Adaptive + compression is a pure schedule/footprint change:
        final table identical to the all-off configuration."""
        cfg = GupsConfig(
            variant="agg", table_log2=10, updates_per_rank=64, batch=16
        )
        fl_off = flags_for(VE)
        fl_on = adaptive_flags(
            agg_max_entries=16, agg_compression=True,
            agg_max_age_ticks=4096.0,
        )
        runs = {}
        for key, fl in (("off", fl_off), ("on", fl_on)):
            runs[key] = run_gups(
                cfg, ranks=4, n_nodes=2, version=VE, machine="generic",
                conduit="ibv", flags=fl,
            )
            assert runs[key].matches_oracle
        assert np.array_equal(runs["off"].table, runs["on"].table)
        assert runs["on"].am_injects < runs["off"].am_injects

    def test_wait_and_barrier_still_covered(self):
        """The progress flush points survive the adaptive rework: a put
        request parked under adaptive thresholds is published by wait()."""
        from repro import barrier, new_, rank_me, rput
        from repro.memory.global_ptr import GlobalPtr

        def body():
            g = new_("u64", 0)
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(2, g.offset, g.ts)
                rput(123, remote).wait()
            barrier()
            return int(g.local().read())

        res = spmd_run(
            body, ranks=4, n_nodes=2, conduit="ibv",
            flags=adaptive_flags(agg_compression=True),
        )
        assert res.values == [0, 0, 123, 0]
