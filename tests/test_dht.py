"""Tests for the distributed hash table application."""

import dataclasses

import pytest

from repro import barrier, rank_me
from repro.apps.dht import (
    DhtConfig,
    DistributedHashMap,
    _dht_body,
    _dht_body_gen,
    _mix,
    run_dht,
)
from repro.errors import UpcxxError
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import spmd_run
from tests.conftest import ALL_VERSIONS


class TestHash:
    def test_mix_is_64bit(self):
        for k in (1, 2**63, 2**64 - 1):
            assert 0 <= _mix(k) < (1 << 64)

    def test_mix_spreads(self):
        slots = { _mix(k) & 1023 for k in range(1, 200) }
        assert len(slots) > 150  # near-uniform spread


class TestBasicOps:
    def test_insert_find_single_rank(self):
        def body():
            t = DistributedHashMap(6)
            barrier()
            t.attach()
            t.insert(17, 1000)
            t.insert(42, 2000)
            return (t.find(17), t.find(42), t.find(99))

        assert spmd_run(body, ranks=1).values == [(1000, 2000, None)]

    def test_update_existing_key(self):
        def body():
            t = DistributedHashMap(6)
            barrier()
            t.attach()
            t.insert(5, 1)
            t.insert(5, 2)
            return t.find(5)

        assert spmd_run(body, ranks=1).values == [2]

    def test_collisions_probe_linearly(self):
        def body():
            t = DistributedHashMap(3)  # 8 slots: collisions guaranteed
            barrier()
            t.attach()
            for k in range(1, 5):
                t.insert(k, k * 10)
            return [t.find(k) for k in range(1, 5)]

        assert spmd_run(body, ranks=1).values == [[10, 20, 30, 40]]

    def test_table_full(self):
        def body():
            t = DistributedHashMap(2)  # 4 slots
            barrier()
            t.attach()
            for k in range(1, 5):
                t.insert(k, k)
            t.insert(99, 99)  # fifth key: full

        with pytest.raises(UpcxxError, match="full"):
            spmd_run(body, ranks=1)

    def test_zero_key_reserved(self):
        def body():
            t = DistributedHashMap(4)
            barrier()
            t.attach()
            t.insert(0, 1)

        with pytest.raises(UpcxxError, match="reserved"):
            spmd_run(body, ranks=1)

    def test_cross_rank_visibility(self):
        def body():
            t = DistributedHashMap(8)
            barrier()
            t.attach()
            t.insert(1000 + rank_me(), rank_me())
            barrier()
            other = 1000 + (rank_me() + 1) % 4
            got = t.find(other)
            barrier()
            return got

        res = spmd_run(body, ranks=4)
        assert res.values == [1, 2, 3, 0]


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestWorkload:
    def test_full_workload_correct(self, version):
        cfg = DhtConfig(log2_slots=9, inserts_per_rank=24, finds_per_rank=24)
        r = run_dht(cfg, ranks=4, version=version, machine="generic")
        assert r.correct
        assert r.ops == 4 * 48


class TestShapes:
    def test_eager_beats_defer(self):
        cfg = DhtConfig(log2_slots=9, inserts_per_rank=32, finds_per_rank=32)
        td = run_dht(
            cfg, ranks=4, version=Version.V2021_3_6_DEFER, machine="intel"
        ).solve_ns
        te = run_dht(
            cfg, ranks=4, version=Version.V2021_3_6_EAGER, machine="intel"
        ).solve_ns
        assert td / te > 1.1  # fine-grained RMA workload: eager matters

    def test_load_factor_guard(self):
        with pytest.raises(UpcxxError, match="load factor"):
            run_dht(
                DhtConfig(log2_slots=6, inserts_per_rank=32),
                ranks=4,
            )


class TestContinuationParity:
    """The generator-ported body must be observably identical to the
    thread-shim (blocking-wrapper) body: same results, same per-rank
    virtual clocks, same scheduler switch count, same switch trace."""

    CFG = DhtConfig(log2_slots=9, inserts_per_rank=16, finds_per_rank=16)

    def _run(self, body, *, event_loop):
        flags = dataclasses.replace(
            flags_for(Version.V2021_3_6_EAGER),
            sched_event_loop=event_loop,
        )
        trace = []
        res = spmd_run(
            body, args=(self.CFG,), ranks=4, machine="generic",
            seed=self.CFG.seed, segment_bytes=1 << 17, flags=flags,
            switch_trace=trace,
        )
        clocks = tuple(c.clock.now_ns for c in res.world.contexts)
        return res.values, clocks, res.world.sched_switches, trace

    @pytest.mark.parametrize("event_loop", [False, True])
    def test_generator_body_matches_blocking_body(self, event_loop):
        gen = self._run(_dht_body_gen, event_loop=event_loop)
        blk = self._run(lambda c: _dht_body(c), event_loop=event_loop)
        assert gen == blk
        assert gen[2] > 0

    def test_substrates_agree_on_generator_body(self):
        ev = self._run(_dht_body_gen, event_loop=True)
        th = self._run(_dht_body_gen, event_loop=False)
        assert ev == th

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_run_dht_results_identical(self, version):
        a = run_dht(
            self.CFG, ranks=4, version=version, machine="generic",
            continuation=True,
        )
        b = run_dht(
            self.CFG, ranks=4, version=version, machine="generic",
            continuation=False,
        )
        assert a.correct and b.correct
        assert a.solve_ns == b.solve_ns
        assert a.ops == b.ops
