"""Wake-fabric wiring tests: nested/directly-driven worlds keep wake
lists, and losing the wiring is observable instead of silent.

Historically only :func:`repro.runtime.runtime.spmd_run` set
``world.scheduler``, so a world built with :func:`build_world` and driven
directly through :class:`EventLoopScheduler.run` had no wake routing: the
conduit's and barrier's notify sites found no scheduler, and a keyed
block would have parked on a wake bit nobody ever set.  The fabric is now
wired through :meth:`World.attach_scheduler` (which ``run`` calls
itself), and each of the two possible wiring gaps is observable:

* a wake notification arriving at a scheduler-less world counts in
  ``World.wake_notify_misses``;
* a keyed block entering a scheduler with no bound wake source demotes to
  the predicate scan and counts in ``SchedulerCore.keyed_scan_fallbacks``.
"""

import dataclasses

import pytest

from repro import barrier_gen, current_ctx, rank_me
from repro.errors import UpcxxError
from repro.runtime.config import RuntimeConfig, Version, flags_for
from repro.runtime.event_loop import EventLoopScheduler
from repro.runtime.runtime import build_world, spmd_run
from repro.runtime.scheduler import SchedulerCore
from repro.sim.costmodel import CostAction


def _flags(**kw):
    return dataclasses.replace(flags_for(Version.V2021_3_6_EAGER), **kw)


def _storm_body(rounds: int):
    ctx = current_ctx()
    me = rank_me()
    for k in range(rounds):
        ctx.charge(CostAction.FUNCTION_CALL, 1 + ((me + k) % 5) * 7)
        yield from barrier_gen()
    return ctx.clock.now_ns


def _drive_direct(ranks: int, rounds: int, *, wake_list: bool):
    """A directly-driven world (build_world + loop.run, no spmd_run) —
    the nested/ambient shape that used to lose wake-list scheduling."""
    config = RuntimeConfig(
        version=Version.V2021_3_6_EAGER,
        flags=_flags(sched_event_loop=True, sched_wake_list=wake_list),
    )
    world = build_world(config, ranks=ranks)
    trace: list = []
    loop = EventLoopScheduler(ranks, switch_trace=trace, wake_list=wake_list)
    values = loop.run(world, _storm_body, (rounds,))
    assert loop.first_error() is None
    clocks = [c.clock.now_ns for c in world.contexts]
    return values, clocks, loop.switches, trace, loop, world


class TestDirectlyDrivenWorld:
    """build_world + EventLoopScheduler.run: wake lists actually engage."""

    @pytest.mark.parametrize("ranks", [2, 8])
    def test_wake_vs_scan_bit_identical(self, ranks):
        out_scan = _drive_direct(ranks, 6, wake_list=False)
        out_wake = _drive_direct(ranks, 6, wake_list=True)
        # values, per-rank clocks, switch count, full decision trace
        assert out_wake[:4] == out_scan[:4]
        # the program genuinely blocked (the regime under test)
        assert any(ev[0] == "block" for ev in out_wake[3])

    def test_wake_path_taken_not_fallback(self):
        *_, loop, world = _drive_direct(8, 6, wake_list=True)
        assert world.scheduler is loop
        # every keyed block parked on its wake bit — zero scan demotions,
        # zero notifications lost to an unattached world
        assert loop.keyed_scan_fallbacks == 0
        assert world.wake_notify_misses == 0

    def test_run_attach_is_idempotent_with_prewired_world(self):
        config = RuntimeConfig(
            version=Version.V2021_3_6_EAGER,
            flags=_flags(sched_event_loop=True),
        )
        world = build_world(config, ranks=4)
        loop = EventLoopScheduler(4)
        world.attach_scheduler(loop)  # spmd_run's wiring, done up front
        values = loop.run(world, _storm_body, (3,))  # attaches again
        assert loop.first_error() is None
        assert len(values) == 4
        assert world.scheduler is loop

    def test_second_scheduler_rejected(self):
        config = RuntimeConfig(version=Version.V2021_3_6_EAGER)
        world = build_world(config, ranks=2)
        world.attach_scheduler(EventLoopScheduler(2))
        with pytest.raises(UpcxxError):
            world.attach_scheduler(EventLoopScheduler(2))


class TestObservableFallbacks:
    """Each wiring gap counts and notes instead of silently degrading."""

    def test_unattached_world_counts_wake_misses(self):
        world = build_world(
            RuntimeConfig(version=Version.V2021_3_6_EAGER), ranks=4
        )
        assert world.scheduler is None
        world.notify_incoming(2)
        world.notify_barrier_epoch()
        assert world.wake_notify_misses == 2

    def test_single_rank_world_misses_not_counted(self):
        # the ambient single-rank world legitimately has no scheduler;
        # nothing can be parked, so a notify there is not a wiring bug
        world = build_world(
            RuntimeConfig(version=Version.V2021_3_6_EAGER), ranks=1
        )
        world.notify_incoming(0)
        world.notify_barrier_epoch()
        assert world.wake_notify_misses == 0

    def test_unbound_scheduler_demotes_keyed_block_to_scan(self):
        sched = SchedulerCore(2, wake_list=True)
        assert sched._wake_source is None
        sched._enter_blocked(0, lambda: False, ("epoch",))
        assert sched.keyed_scan_fallbacks == 1
        # the demoted block is scan-pinned (counted unkeyed), so the pick
        # loop re-evaluates its predicate instead of trusting a wake bit
        # that no notify site can reach
        assert sched._unkeyed == 1

    def test_bound_scheduler_parks_keyed_block(self):
        sched = SchedulerCore(2, wake_list=True)
        world = build_world(
            RuntimeConfig(version=Version.V2021_3_6_EAGER), ranks=2
        )
        sched.bind_wake_source(world)
        sched._enter_blocked(0, lambda: False, ("epoch",))
        assert sched.keyed_scan_fallbacks == 0
        assert sched._unkeyed == 0


class TestSpmdRunStillWired:
    """The classic entry point routes everything through the fabric."""

    @pytest.mark.parametrize("event_loop", [False, True])
    def test_offnode_run_loses_no_notifications(self, event_loop):
        from repro.apps.gups import GupsConfig, run_gups

        res = run_gups(
            GupsConfig(variant="amo_future", table_log2=8,
                       updates_per_rank=16, batch=8),
            ranks=4,
            n_nodes=2,
            conduit="udp",
            machine="ibm",
            version=Version.V2021_3_6_EAGER,
            flags=_flags(sched_event_loop=event_loop),
        )
        assert res.matches_oracle

    def test_world_scheduler_attached(self):
        trace: list = []
        res = spmd_run(
            _storm_body, ranks=3, flags=_flags(sched_event_loop=True),
            args=(2,), switch_trace=trace,
        )
        assert res.world.scheduler is not None
        assert res.world.wake_notify_misses == 0
        assert res.world.scheduler.keyed_scan_fallbacks == 0
