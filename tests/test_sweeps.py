"""Tests for the locality-sweep harness."""

import pytest

from repro.bench.sweeps import LocalityPoint, locality_sweep


class TestLocalityPoint:
    def test_speedup_derivation(self):
        p = LocalityPoint(local_fraction=1.0, defer_ns=150.0, eager_ns=100.0)
        assert p.speedup == pytest.approx(0.5)


class TestSweep:
    def test_endpoints(self):
        pts = locality_sweep(fractions=(0.0, 1.0), ranks=4, updates=48)
        by = {p.local_fraction: p for p in pts}
        # all off-node: eager is within a branch of defer
        assert abs(by[0.0].speedup) < 0.02
        # all on-node: eager clearly wins
        assert by[1.0].speedup > 0.1

    def test_deterministic(self):
        a = locality_sweep(fractions=(0.5,), ranks=4, updates=32)[0]
        b = locality_sweep(fractions=(0.5,), ranks=4, updates=32)[0]
        assert a.defer_ns == b.defer_ns
        assert a.eager_ns == b.eager_ns

    def test_point_ordering_preserved(self):
        pts = locality_sweep(fractions=(0.25, 0.75), ranks=4, updates=32)
        assert [p.local_fraction for p in pts] == [0.25, 0.75]
