"""Tests for the future-returning collectives."""

import pytest

from repro import (
    barrier,
    barrier_async,
    broadcast,
    rank_me,
    rank_n,
    reduce_all,
    reduce_one,
)
from repro.coll.collectives import REDUCTION_OPS
from repro.errors import UpcxxError
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run
from tests.conftest import ALL_VERSIONS


class TestBroadcast:
    def test_value_reaches_everyone(self):
        def body():
            v = "the payload" if rank_me() == 1 else None
            return broadcast(v, 1).wait()

        res = spmd_run(body, ranks=4)
        assert res.values == ["the payload"] * 4

    def test_root_future_ready_immediately(self):
        def body():
            f = broadcast(rank_me(), 0)
            ready_now = f.is_ready() if rank_me() == 0 else None
            f.wait()
            barrier()
            return ready_now

        res = spmd_run(body, ranks=2)
        assert res.values[0] is True

    def test_sequence_matching(self):
        """Back-to-back broadcasts match by call order."""

        def body():
            a = broadcast("A" if rank_me() == 0 else None, 0)
            b = broadcast("B" if rank_me() == 1 else None, 1)
            return (a.wait(), b.wait())

        res = spmd_run(body, ranks=3)
        assert all(v == ("A", "B") for v in res.values)

    def test_root_out_of_range(self, ctx):
        with pytest.raises(UpcxxError):
            broadcast(1, 5)

    def test_root_mismatch_detected(self):
        def body():
            broadcast(0, rank_me()).wait()  # different roots: illegal

        with pytest.raises(UpcxxError, match="mismatch"):
            spmd_run(body, ranks=2)

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_works_on_every_build(self, version):
        def body():
            return broadcast(42 if rank_me() == 0 else None, 0).wait()

        res = spmd_run(body, ranks=3, version=version)
        assert res.values == [42] * 3

    def test_complex_payload(self):
        def body():
            payload = {"a": [1, 2], "b": (3,)} if rank_me() == 0 else None
            return broadcast(payload, 0).wait()

        res = spmd_run(body, ranks=2)
        assert res.values == [{"a": [1, 2], "b": (3,)}] * 2


class TestReduceOne:
    def test_sum_at_root(self):
        def body():
            f = reduce_one(rank_me() + 1, "add", 0)
            out = f.wait()
            barrier()
            return out

        res = spmd_run(body, ranks=4)
        assert res.values[0] == 10
        assert all(v is None for v in res.values[1:])

    def test_nonzero_root(self):
        def body():
            out = reduce_one(rank_me(), "max", 2).wait()
            barrier()
            return out

        res = spmd_run(body, ranks=3)
        assert res.values[2] == 2

    def test_callable_op(self):
        def body():
            out = reduce_one([rank_me()], lambda a, b: a + b, 0).wait()
            barrier()
            return out

        res = spmd_run(body, ranks=3)
        assert sorted(res.values[0]) == [0, 1, 2]

    def test_unknown_op(self, ctx):
        with pytest.raises(UpcxxError):
            reduce_one(1, "median", 0)

    def test_single_rank(self):
        def body():
            return reduce_one(5, "add", 0).wait()

        assert spmd_run(body, ranks=1).values == [5]

    @pytest.mark.parametrize(
        "op,values,expected",
        [
            ("add", [1, 2, 3, 4], 10),
            ("mul", [1, 2, 3, 4], 24),
            ("min", [5, 2, 9, 4], 2),
            ("max", [5, 2, 9, 4], 9),
            ("bit_or", [1, 2, 4, 8], 15),
            ("bit_and", [7, 5, 13, 15], 5),
            ("bit_xor", [1, 3, 5, 7], 0),
        ],
    )
    def test_every_named_op(self, op, values, expected):
        def body():
            out = reduce_one(values[rank_me()], op, 0).wait()
            barrier()
            return out

        res = spmd_run(body, ranks=4)
        assert res.values[0] == expected

    def test_ops_table_complete(self):
        assert set(REDUCTION_OPS) == {
            "add", "mul", "min", "max", "bit_and", "bit_or", "bit_xor"
        }


class TestReduceAll:
    def test_everyone_gets_result(self):
        def body():
            return reduce_all(rank_me() + 1, "add").wait()

        res = spmd_run(body, ranks=5)
        assert res.values == [15] * 5

    def test_max(self):
        def body():
            return reduce_all(rank_me() * 7 % 5, "max").wait()

        res = spmd_run(body, ranks=4)
        assert len(set(res.values)) == 1

    def test_repeated_reductions(self):
        def body():
            a = reduce_all(1, "add").wait()
            b = reduce_all(rank_me(), "max").wait()
            return (a, b)

        res = spmd_run(body, ranks=3)
        assert all(v == (3, 2) for v in res.values)


class TestBarrierAsync:
    def test_completes(self):
        def body():
            f = barrier_async()
            f.wait()
            return "past"

        assert spmd_run(body, ranks=4).values == ["past"] * 4

    def test_overlap_with_work(self):
        """Work can be overlapped between initiation and wait."""

        def body():
            ctx = current_ctx()
            f = barrier_async()
            t0 = ctx.clock.now_ns
            ctx.clock.advance(100.0)  # overlapped "compute"
            f.wait()
            return ctx.clock.now_ns >= t0 + 100.0

        res = spmd_run(body, ranks=3)
        assert all(res.values)

    def test_not_ready_until_all_arrive(self):
        def body():
            ctx = current_ctx()
            f = barrier_async()
            if rank_me() == 0:
                # nobody else has called progress yet; with more ranks the
                # async barrier cannot be complete at initiation
                early = f.is_ready() if rank_n() > 1 else True
            else:
                early = None
            f.wait()
            barrier()
            return early

        res = spmd_run(body, ranks=3)
        assert res.values[0] is False
