"""Flag-matrix equivalence: small GUPS across every feature-flag combo.

One small ``agg``-variant GUPS run (4 ranks / 2 nodes / udp) is executed
for every combination of ``{eager, defer} x 2^6`` feature flags:
``am_aggregation``, ``agg_adaptive``, ``agg_compression``, ``obs_spans``,
``progress_adaptive``, ``wait_hints``.  Expectations:

===================  =====================================================
axis                 expectation
===================  =====================================================
(all combos)         checksum equals the HPCC oracle — no flag may change
                     program semantics
obs_spans            pure observation: toggling it leaves ``solve_ns``
                     and ``am_injects`` bit-identical
agg_adaptive,        inert without ``am_aggregation``: ``solve_ns``,
agg_compression      ``am_injects`` and checksum bit-identical to the
                     same combo with the dead flags cleared
am_aggregation       strictly fewer ``AM_INJECT`` charges than the same
                     combo without it (bundling), and bundle headers
                     appear; checksum unchanged
progress_adaptive    checksum unchanged vs. the same combo without it;
                     total ``PROGRESS_POLL`` charge does not exceed the
                     static engine's (skips replace full polls; the few
                     aged mini-drains are charged as polls and must be
                     amortized by the elisions)
wait_hints           checksum unchanged, and zero targeted wait flushes —
                     the ``agg`` workload blocks only in barriers, whose
                     wait target is non-targeting by design; without
                     ``am_aggregation`` + ``agg_adaptive`` (the aged
                     near-full ride-along, the one waitless pathway) the
                     flag is fully inert: ``solve_ns`` and ``am_injects``
                     bit-identical to the same combo with it cleared
===================  =====================================================

Timing (``solve_ns``) is *expected* to differ across the notification
and aggregation axes — that is the paper's whole subject — so no
cross-axis timing equality is asserted beyond the rows above.

Two further axis families are swept separately below: the mechanism
flags (``sched_wake_list``, ``cost_batching`` — pure implementation
strategies, bit-identical on every observable) and ``cx_continuations``
(a *gate* on the continuation/counter completion kinds: bit-identical
for workloads that request neither, documented expectations for the
``cont`` workload that does).
"""

import itertools

import pytest

from repro.apps.gups import GupsConfig, run_gups
from repro.runtime.config import flags_for
from tests.conftest import VD, VE

AXES = (
    "am_aggregation",
    "agg_adaptive",
    "agg_compression",
    "obs_spans",
    "progress_adaptive",
    "wait_hints",
)

CFG = GupsConfig(variant="agg", table_log2=8, updates_per_rank=16, batch=8)


def combo_key(version, on):
    return (version, frozenset(on))


@pytest.fixture(scope="module")
def matrix():
    """All 128 runs, keyed by (version, frozenset(enabled flag names))."""
    results = {}
    for version in (VE, VD):
        for bits in itertools.product((False, True), repeat=len(AXES)):
            on = {name for name, bit in zip(AXES, bits) if bit}
            flags = flags_for(version).replace(
                **{name: True for name in on}
            )
            results[combo_key(version, on)] = run_gups(
                CFG,
                ranks=4,
                n_nodes=2,
                conduit="udp",
                version=version,
                machine="generic",
                flags=flags,
            )
    return results


def combos(*, without=(), with_=()):
    """All (version, on-set) keys containing ``with_`` and none of
    ``without``."""
    out = []
    for version in (VE, VD):
        for bits in itertools.product((False, True), repeat=len(AXES)):
            on = {name for name, bit in zip(AXES, bits) if bit}
            if set(with_) <= on and not (set(without) & on):
                out.append((version, on))
    return out


class TestMatrix:
    def test_every_combo_matches_the_oracle(self, matrix):
        bad = [
            key for key, res in matrix.items() if not res.matches_oracle
        ]
        assert not bad, f"checksum mismatches: {bad}"

    def test_obs_spans_is_pure_observation(self, matrix):
        for version, on in combos(without=("obs_spans",)):
            base = matrix[combo_key(version, on)]
            obs = matrix[combo_key(version, on | {"obs_spans"})]
            assert obs.solve_ns == base.solve_ns, (version, on)
            assert obs.am_injects == base.am_injects, (version, on)
            assert obs.checksum == base.checksum, (version, on)

    def test_agg_knob_flags_inert_without_aggregation(self, matrix):
        for version, on in combos(without=("am_aggregation",)):
            dead = on & {"agg_adaptive", "agg_compression"}
            if not dead:
                continue
            stripped = matrix[combo_key(version, on - dead)]
            res = matrix[combo_key(version, on)]
            assert res.solve_ns == stripped.solve_ns, (version, on)
            assert res.am_injects == stripped.am_injects, (version, on)
            assert res.checksum == stripped.checksum, (version, on)

    def test_aggregation_bundles_reduce_injections(self, matrix):
        for version, on in combos(without=("am_aggregation",)):
            base = matrix[combo_key(version, on)]
            agg = matrix[combo_key(version, on | {"am_aggregation"})]
            assert agg.am_injects < base.am_injects, (version, on)
            assert agg.am_bundles > 0, (version, on)
            assert base.am_bundles == 0, (version, on)
            assert agg.checksum == base.checksum, (version, on)

    def test_adaptive_progress_preserves_results_and_poll_budget(
        self, matrix
    ):
        for version, on in combos(without=("progress_adaptive",)):
            static = matrix[combo_key(version, on)]
            adaptive = matrix[
                combo_key(version, on | {"progress_adaptive"})
            ]
            assert adaptive.checksum == static.checksum, (version, on)
            assert adaptive.progress_polls <= static.progress_polls, (
                version,
                on,
            )
            assert static.progress_poll_skips == 0, (version, on)

    def test_wait_hints_inert_without_targeted_waits(self, matrix):
        for version, on in combos(without=("wait_hints",)):
            base = matrix[combo_key(version, on)]
            hinted = matrix[combo_key(version, on | {"wait_hints"})]
            assert hinted.checksum == base.checksum, (version, on)
            # barriers publish non-targeting targets; nothing in the agg
            # workload blocks on a future, so no targeted flush may fire
            assert hinted.agg_stats.wait_flushes == 0, (version, on)
            if not {"am_aggregation", "agg_adaptive"} <= on:
                # the aged near-full ride-along needs an active age bound;
                # without one every hinted code path is dead
                assert hinted.solve_ns == base.solve_ns, (version, on)
                assert hinted.am_injects == base.am_injects, (version, on)


# Scheduler-mechanism axes: ``sched_wake_list`` and ``cost_batching`` are
# pure implementation strategies — toggling either must be bit-identical
# on *every* observable (timing included), unlike the semantic axes above
# where only checksums are pinned.  Swept against a smaller base matrix
# (the three flags that most reshape scheduling/progress behavior, on
# both scheduler substrates) to keep the run count reasonable.
MECH_BASE_AXES = (
    "am_aggregation",
    "progress_adaptive",
    "wait_hints",
    "sched_event_loop",
)


class TestMechanismFlagsBitIdentical:
    @pytest.fixture(scope="class")
    def mech_matrix(self):
        """(version, on-set, variant) -> result, where variant is
        ``base`` (defaults: wake list + batching on), ``scan``
        (sched_wake_list off), or ``unbatched`` (cost_batching off)."""
        results = {}
        variants = {
            "base": {},
            "scan": {"sched_wake_list": False},
            "unbatched": {"cost_batching": False},
        }
        for version in (VE, VD):
            for bits in itertools.product(
                (False, True), repeat=len(MECH_BASE_AXES)
            ):
                on = {
                    name for name, bit in zip(MECH_BASE_AXES, bits) if bit
                }
                for vname, overrides in variants.items():
                    flags = flags_for(version).replace(
                        **{name: True for name in on}, **overrides
                    )
                    results[(version, frozenset(on), vname)] = run_gups(
                        CFG,
                        ranks=4,
                        n_nodes=2,
                        conduit="udp",
                        version=version,
                        machine="generic",
                        flags=flags,
                    )
        return results

    def _assert_identical(self, mech_matrix, variant):
        for (version, on, vname), res in mech_matrix.items():
            if vname != "base":
                continue
            other = mech_matrix[(version, on, variant)]
            key = (version, sorted(on))
            assert other.solve_ns == res.solve_ns, key
            assert other.checksum == res.checksum, key
            assert other.am_injects == res.am_injects, key
            assert other.progress_polls == res.progress_polls, key

    def test_wake_list_bit_identical(self, mech_matrix):
        self._assert_identical(mech_matrix, "scan")

    def test_cost_batching_bit_identical(self, mech_matrix):
        self._assert_identical(mech_matrix, "unbatched")


# The ``cx_continuations`` axis: the flag *gates* two new completion
# kinds (continuations, counters — DESIGN.md §13) but must be perfectly
# inert for workloads that do not request them — bit-identical on every
# observable, timing included, like the mechanism flags above.  For a
# workload that *does* use them (the ``cont`` GUPS variant), the
# documented expectations hold across the mechanism combos: the oracle
# checksum is preserved, the continuation-dispatch charge appears, and
# no future/promise cells are allocated for the tracked updates.
CX_BASE_AXES = (
    "am_aggregation",
    "progress_adaptive",
    "sched_event_loop",
)

CX_CFG = GupsConfig(
    variant="cont", table_log2=8, updates_per_rank=16, batch=8
)


def _cx_combos():
    for version in (VE, VD):
        for bits in itertools.product(
            (False, True), repeat=len(CX_BASE_AXES)
        ):
            yield version, {
                name for name, bit in zip(CX_BASE_AXES, bits) if bit
            }


class TestCxContinuationsDimension:
    @pytest.fixture(scope="class")
    def cx_off_matrix(self):
        """(version, on-set, flag?) -> agg-workload result: the workload
        issues no continuation/counter requests, so the flag is dead."""
        results = {}
        for version, on in _cx_combos():
            for cx in (False, True):
                flags = flags_for(version).replace(
                    **{name: True for name in on}, cx_continuations=cx
                )
                results[(version, frozenset(on), cx)] = run_gups(
                    CFG,
                    ranks=4,
                    n_nodes=2,
                    conduit="udp",
                    version=version,
                    machine="generic",
                    flags=flags,
                )
        return results

    @pytest.fixture(scope="class")
    def cx_on_matrix(self):
        """(version, on-set) -> cont-workload result, flag on."""
        results = {}
        for version, on in _cx_combos():
            flags = flags_for(version).replace(
                **{name: True for name in on}, cx_continuations=True
            )
            results[(version, frozenset(on))] = run_gups(
                CX_CFG,
                ranks=4,
                n_nodes=2,
                conduit="udp",
                version=version,
                machine="generic",
                flags=flags,
            )
        return results

    def test_flag_bit_identical_without_requests(self, cx_off_matrix):
        for (version, on, cx), res in cx_off_matrix.items():
            if cx:
                continue
            other = cx_off_matrix[(version, on, True)]
            key = (version, sorted(on))
            assert other.solve_ns == res.solve_ns, key
            assert other.checksum == res.checksum, key
            assert other.am_injects == res.am_injects, key
            assert other.progress_polls == res.progress_polls, key

    def test_cont_workload_matches_oracle_everywhere(self, cx_on_matrix):
        bad = [
            (version, sorted(on))
            for (version, on), res in cx_on_matrix.items()
            if not res.matches_oracle
        ]
        assert not bad, f"checksum mismatches: {bad}"

    def test_cont_spans_are_eager_class_on_defer_build(self):
        """The documented flag-on expectation: continuation-tracked
        updates never park, so their notification gaps land in the
        ``eager`` class even on the deferred-notification build."""
        res = run_gups(
            CX_CFG, ranks=4, n_nodes=2, conduit="udp", version=VD,
            machine="generic",
            flags=flags_for(VD).replace(
                cx_continuations=True, obs_spans=True
            ),
        )
        assert res.matches_oracle
        modes = {m for (m, _loc) in res.obs_stats.gaps if m != "none"}
        assert modes == {"eager"}, modes

    def test_event_loop_substrate_bit_identical(self, cx_on_matrix):
        """The cont workload is substrate-independent: each combo's
        event-loop run reproduces the thread run exactly."""
        for (version, on), res in cx_on_matrix.items():
            if "sched_event_loop" in on:
                continue
            other = cx_on_matrix[(version, on | {"sched_event_loop"})]
            key = (version, sorted(on))
            assert other.solve_ns == res.solve_ns, key
            assert other.checksum == res.checksum, key
            assert other.progress_polls == res.progress_polls, key
