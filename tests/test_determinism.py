"""Determinism and reproducibility guarantees.

The simulation promises bit-identical functional results and virtual
clocks for identical (program, seed, version, machine) tuples — the
property that makes the benchmark figures reproducible and reviewable.
"""

import pytest

from repro.apps.gups import GupsConfig, run_gups
from repro.apps.matching import MatchingConfig, run_matching
from repro.bench.harness import run_micro
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run

VE = Version.V2021_3_6_EAGER
VD = Version.V2021_3_6_DEFER


class TestRunLevelDeterminism:
    def test_identical_runs_identical_clocks(self):
        def body():
            from repro import barrier, new_, rput

            g = new_("u64")
            for i in range(5):
                rput(i, g).wait()
            barrier()
            from repro.runtime.context import current_ctx

            return current_ctx().clock.now_ns

        a = spmd_run(body, ranks=4, seed=3)
        b = spmd_run(body, ranks=4, seed=3)
        assert a.values == b.values

    def test_seed_changes_rng_but_not_structure(self):
        def body():
            from repro.runtime.context import current_ctx

            return current_ctx().rng.random()

        a = spmd_run(body, ranks=2, seed=1)
        b = spmd_run(body, ranks=2, seed=2)
        assert a.values != b.values

    def test_gups_fully_reproducible(self):
        cfg = GupsConfig(
            variant="rma_future", table_log2=9, updates_per_rank=32, batch=8
        )
        a = run_gups(cfg, ranks=4, version=VD, machine="intel")
        b = run_gups(cfg, ranks=4, version=VD, machine="intel")
        assert a.solve_ns == b.solve_ns
        assert a.checksum == b.checksum

    def test_matching_fully_reproducible(self):
        cfg = MatchingConfig(graph="random", scale=1)
        a = run_matching(cfg, ranks=4, machine="intel")
        b = run_matching(cfg, ranks=4, machine="intel")
        assert a.solve_ns == b.solve_ns
        assert a.mate == b.mate
        assert a.cross_messages == b.cross_messages


class TestGoldenValues:
    """Pinned virtual-time values: any cost-model or code-path change that
    shifts these is visible in review (update deliberately)."""

    def test_micro_put_intel_golden(self):
        r = run_micro("put", VE, "intel", n_ops=10, n_samples=1)
        # eager local put on intel: rma_call 72 + completion 3 + downcast
        # 1.5 + memcpy 1 + ready check 1 = 78.5 ns
        assert r.ns_per_op == pytest.approx(78.5)

    def test_micro_put_defer_intel_golden(self):
        r = run_micro("put", VD, "intel", n_ops=10, n_samples=1)
        # + alloc 33 + free 12 + enqueue 7 + poll 6 + dispatch 14 + extra
        #   ready check 1 = 151.5 ns
        assert r.ns_per_op == pytest.approx(151.5)

    def test_micro_put_2021_3_0_intel_golden(self):
        from repro.runtime.config import Version as V

        r = run_micro("put", V.V2021_3_0, "intel", n_ops=10, n_samples=1)
        # + descriptor 8 + its free 12 + dynamic is_local branch 1 = 172.5
        assert r.ns_per_op == pytest.approx(172.5)

    def test_amo_contention_scales_with_peers(self):
        """fadd cost grows linearly in co-located peer count."""
        from repro import AtomicDomain, barrier, new_
        from repro.runtime.context import current_ctx

        def body():
            ad = AtomicDomain({"fetch_add"})
            g = new_("u64")
            barrier()
            ctx = current_ctx()
            t0 = ctx.clock.now_ns
            ad.fetch_add(g, 1).wait()
            dt = ctx.clock.now_ns - t0
            barrier()
            return dt

        t2 = spmd_run(body, ranks=2, machine="intel").values[0]
        t16 = spmd_run(body, ranks=16, machine="intel").values[0]
        # intel contention constant: 20 ns/peer → 14 extra peers = 280 ns
        assert t16 - t2 == pytest.approx(14 * 20.0)
