"""Unit tests for the paper's sampling protocol (20 samples, avg of top 10)."""

import pytest

from repro.sim.stats import paper_average, run_samples


class TestPaperAverage:
    def test_average_of_best_ten_latency(self):
        samples = list(range(1, 21))  # 1..20
        st = paper_average(samples, top=10, lower_is_better=True)
        assert st.value == pytest.approx(sum(range(1, 11)) / 10)

    def test_average_of_best_ten_throughput(self):
        samples = list(range(1, 21))
        st = paper_average(samples, top=10, lower_is_better=False)
        assert st.value == pytest.approx(sum(range(11, 21)) / 10)

    def test_best_and_worst(self):
        st = paper_average([5.0, 1.0, 3.0], top=2)
        assert st.best == 1.0
        assert st.worst == 5.0

    def test_mean_is_over_all_samples(self):
        st = paper_average([1.0, 2.0, 9.0], top=1)
        assert st.mean == pytest.approx(4.0)
        assert st.value == 1.0

    def test_fewer_samples_than_top(self):
        st = paper_average([4.0, 2.0], top=10)
        assert st.value == pytest.approx(3.0)

    def test_single_sample(self):
        st = paper_average([7.0])
        assert st.value == 7.0
        assert st.n == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paper_average([])

    def test_samples_preserved_in_original_order(self):
        st = paper_average([3.0, 1.0, 2.0], top=1)
        assert st.samples == (3.0, 1.0, 2.0)


class TestRunSamples:
    def test_fn_receives_indices(self):
        seen = []

        def fn(i):
            seen.append(i)
            return float(i)

        run_samples(fn, n_samples=5, top=2)
        assert seen == [0, 1, 2, 3, 4]

    def test_protocol_applied(self):
        st = run_samples(lambda i: float(i), n_samples=20, top=10)
        assert st.value == pytest.approx(4.5)  # mean of 0..9

    def test_invalid_n_samples(self):
        with pytest.raises(ValueError):
            run_samples(lambda i: 0.0, n_samples=0)
