"""Tests for the distributed half-approximate matching application."""

import dataclasses

import pytest

from repro.apps.graphs import GRAPH_NAMES, Graph, make_graph
from repro.apps.matching import (
    MatchingConfig,
    _matching_body,
    _matching_body_gen,
    matching_weight,
    pack_msg,
    run_matching,
    serial_matching,
    unpack_msg,
)
from repro.runtime.config import Version, flags_for
from repro.runtime.runtime import spmd_run
from tests.conftest import ALL_VERSIONS


class TestMessagePacking:
    def test_roundtrip(self):
        for kind, a, b in [(1, 0, 0), (2, 123456, 999999), (1, 2**30 - 1, 7)]:
            assert unpack_msg(pack_msg(kind, a, b)) == (kind, a, b)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_msg(1, 2**30, 0)


class TestSerialReference:
    def test_triangle(self):
        # weights are deterministic; greedy takes the single heaviest edge
        g = Graph("tri", 3, [[], [], []])
        from repro.apps.graphs import edge_weight

        for u, v in [(0, 1), (1, 2), (0, 2)]:
            w = edge_weight(u, v)
            g.adj[u].append((v, w))
            g.adj[v].append((u, w))
        mate = serial_matching(g)
        matched = [(u, m) for u, m in enumerate(mate) if m > u]
        assert len(matched) == 1

    def test_matching_is_valid(self):
        g = make_graph("random", scale=1)
        mate = serial_matching(g)
        for v, m in enumerate(mate):
            if m >= 0:
                assert mate[m] == v
                assert any(x == m for x, _ in g.adj[v])

    def test_half_approximation_bound(self):
        """Greedy/locally-dominant weight ≥ ½ of the true optimum."""
        import networkx as nx

        g = make_graph("random", scale=1, seed=5)
        # build a small subgraph to keep the exact solver fast
        sub_n = 120
        sub = Graph("sub", sub_n, [
            [(v, w) for v, w in g.adj[u] if v < sub_n]
            for u in range(sub_n)
        ])
        mate = serial_matching(sub)
        ours = matching_weight(sub, mate)
        nxg = nx.Graph()
        for u, v, w in sub.edges():
            nxg.add_edge(u, v, weight=w)
        opt_edges = nx.max_weight_matching(nxg)
        opt = sum(nxg[u][v]["weight"] for u, v in opt_edges)
        assert ours >= 0.5 * opt
        assert ours <= opt + 1e-9


@pytest.mark.parametrize("name", GRAPH_NAMES)
class TestDistributedMatchesSerial:
    def test_two_ranks(self, name):
        cfg = MatchingConfig(graph=name, scale=1)
        g = cfg.build_graph()
        r = run_matching(cfg, ranks=2, graph=g, machine="generic")
        assert r.mate == serial_matching(g)

    def test_four_ranks(self, name):
        cfg = MatchingConfig(graph=name, scale=1)
        g = cfg.build_graph()
        r = run_matching(cfg, ranks=4, graph=g, machine="generic")
        assert r.mate == serial_matching(g)


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestVersionIndependence:
    def test_same_matching_every_version(self, version):
        cfg = MatchingConfig(graph="random", scale=1)
        g = cfg.build_graph()
        r = run_matching(
            cfg, ranks=4, version=version, graph=g, machine="intel"
        )
        assert r.mate == serial_matching(g)
        assert r.weight == pytest.approx(
            matching_weight(g, serial_matching(g))
        )


class TestResultMetadata:
    def test_counters(self):
        cfg = MatchingConfig(graph="venturi", scale=1)
        g = cfg.build_graph()
        r = run_matching(cfg, ranks=4, graph=g, machine="generic")
        assert r.rounds >= 1
        assert r.cross_messages > 0
        assert r.solve_ns > 0
        assert r.n == g.n and r.n_edges == g.n_edges

    def test_matched_pairs_consistent(self):
        cfg = MatchingConfig(graph="channel", scale=1)
        g = cfg.build_graph()
        r = run_matching(cfg, ranks=2, graph=g, machine="generic")
        for u, v in r.matched_pairs():
            assert r.mate[u] == v and r.mate[v] == u

    def test_single_rank_run(self):
        cfg = MatchingConfig(graph="random", scale=1)
        g = cfg.build_graph()
        r = run_matching(cfg, ranks=1, graph=g, machine="generic")
        assert r.mate == serial_matching(g)
        assert r.cross_messages == 0


class TestPaperShape:
    def test_eager_speedup_grows_with_nonlocality(self):
        """The Figure 8 gradient at reduced scale: youtube gains more
        than channel."""
        speedups = {}
        for name in ("channel", "youtube"):
            cfg = MatchingConfig(graph=name, scale=1)
            g = cfg.build_graph()
            td = run_matching(
                cfg, ranks=4, version=Version.V2021_3_6_DEFER,
                graph=g, machine="intel",
            ).solve_ns
            te = run_matching(
                cfg, ranks=4, version=Version.V2021_3_6_EAGER,
                graph=g, machine="intel",
            ).solve_ns
            speedups[name] = td / te - 1
        assert speedups["youtube"] > speedups["channel"]
        assert speedups["channel"] >= -0.01  # eager never hurts


class TestContinuationParity:
    """Generator-ported solver vs thread-shim wrapper: identical mates,
    per-rank virtual clocks, scheduler switch counts, and switch traces
    on both substrates."""

    def _run(self, body, *, event_loop):
        cfg = MatchingConfig(graph="random", scale=1)
        g = cfg.build_graph()
        flags = dataclasses.replace(
            flags_for(Version.V2021_3_6_EAGER),
            sched_event_loop=event_loop,
        )
        trace = []
        res = spmd_run(
            body, args=(g, cfg), ranks=4, machine="generic",
            conduit="mpi", seed=cfg.seed, segment_bytes=1 << 20,
            flags=flags, switch_trace=trace,
        )
        clocks = tuple(c.clock.now_ns for c in res.world.contexts)
        return res.values, clocks, res.world.sched_switches, trace

    @pytest.mark.parametrize("event_loop", [False, True])
    def test_generator_body_matches_blocking_body(self, event_loop):
        gen = self._run(_matching_body_gen, event_loop=event_loop)
        blk = self._run(
            lambda gg, cc: _matching_body(gg, cc), event_loop=event_loop
        )
        assert gen == blk
        assert gen[2] > 0

    def test_substrates_agree_on_generator_body(self):
        ev = self._run(_matching_body_gen, event_loop=True)
        th = self._run(_matching_body_gen, event_loop=False)
        assert ev == th

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_run_matching_results_identical(self, version):
        cfg = MatchingConfig(graph="channel", scale=1)
        g = cfg.build_graph()
        a = run_matching(
            cfg, ranks=4, version=version, graph=g, machine="generic",
            continuation=True,
        )
        b = run_matching(
            cfg, ranks=4, version=version, graph=g, machine="generic",
            continuation=False,
        )
        assert a.mate == b.mate == serial_matching(g)
        assert a.solve_ns == b.solve_ns
        assert a.rounds == b.rounds
        assert a.cross_messages == b.cross_messages
