"""Functional tests for RMA operations (local/on-node paths).

Every test runs across all three library versions where meaningful: the
functional outcome must be identical; only the notification timing and
cost structure differ (those are pinned in test_rma_semantics.py).
"""

import numpy as np
import pytest

from repro import (
    Promise,
    copy,
    new_,
    new_array,
    operation_cx,
    rank_me,
    remote_cx,
    rget,
    rget_bulk,
    rget_into,
    rput,
    rput_bulk,
    source_cx,
)
from repro.errors import CompletionError, InvalidGlobalPointer
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from tests.conftest import ALL_VERSIONS


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestScalarOps:
    def test_put_then_get(self, versioned_ctx, version):
        versioned_ctx(version)
        g = new_("i64", 0)
        rput(-7, g).wait()
        assert rget(g).wait() == -7

    def test_put_float(self, versioned_ctx, version):
        versioned_ctx(version)
        g = new_("f64")
        rput(2.5, g).wait()
        assert rget(g).wait() == 2.5

    def test_get_into(self, versioned_ctx, version):
        versioned_ctx(version)
        src = new_("u64", 77)
        dst = new_("u64", 0)
        fut = rget_into(src, dst, 1)
        fut.wait()
        assert dst.local().read() == 77

    def test_get_into_localref(self, versioned_ctx, version):
        versioned_ctx(version)
        src = new_("u64", 5)
        dst = new_("u64", 0)
        rget_into(src, dst.local(), 1).wait()
        assert dst.local().read() == 5


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestBulkOps:
    def test_put_bulk(self, versioned_ctx, version):
        versioned_ctx(version)
        g = new_array("u64", 8)
        rput_bulk(list(range(8)), g).wait()
        assert list(g.local().view(8)) == list(range(8))

    def test_get_bulk(self, versioned_ctx, version):
        versioned_ctx(version)
        g = new_array("u64", 4)
        rput_bulk([9, 8, 7, 6], g).wait()
        out = rget_bulk(g, 4).wait()
        assert list(out) == [9, 8, 7, 6]

    def test_get_into_multi(self, versioned_ctx, version):
        versioned_ctx(version)
        src = new_array("u64", 6, fill=3)
        dst = new_array("u64", 6)
        rget_into(src, dst, 6).wait()
        assert list(dst.local().view(6)) == [3] * 6

    def test_copy_local(self, versioned_ctx, version):
        versioned_ctx(version)
        src = new_array("i64", 5)
        dst = new_array("i64", 5)
        rput_bulk([1, 2, 3, 4, 5], src).wait()
        copy(src, dst, 5).wait()
        assert list(dst.local().view(5)) == [1, 2, 3, 4, 5]


class TestValidation:
    def test_null_put(self, ctx):
        with pytest.raises(InvalidGlobalPointer):
            rput(1, GlobalPtr.NULL)

    def test_null_get(self, ctx):
        with pytest.raises(InvalidGlobalPointer):
            rget(GlobalPtr.NULL)

    def test_bad_count(self, ctx):
        g = new_("u64")
        with pytest.raises(ValueError):
            rget_into(g, new_("u64"), 0)
        with pytest.raises(ValueError):
            rget_bulk(g, 0)

    def test_copy_type_mismatch(self, ctx):
        a = new_("u64")
        b = new_("i64")
        with pytest.raises(InvalidGlobalPointer):
            copy(a, b, 1)

    def test_put_2d_rejected(self, ctx):
        g = new_array("u64", 4)
        with pytest.raises(ValueError):
            rput_bulk(np.zeros((2, 2)), g)

    def test_get_remote_event_unsupported(self, ctx):
        g = new_("u64")
        with pytest.raises(CompletionError):
            rget(g, remote_cx.as_rpc(lambda: None))


class TestCompletionsIntegration:
    def test_source_and_operation_futures(self, ctx):
        g = new_("u64")
        src_fut, op_fut = rput(
            3, g, source_cx.as_future() | operation_cx.as_future()
        )
        src_fut.wait()
        op_fut.wait()
        assert rget(g).wait() == 3

    def test_promise_tracking(self, ctx):
        g = new_array("u64", 10)
        p = Promise()
        for i in range(10):
            rput(i, g + i, operation_cx.as_promise(p))
        p.finalize().wait()
        assert list(g.local().view(10)) == list(range(10))

    def test_remote_cx_rpc_runs_on_target(self):
        def body():
            hits = []
            g = new_("u64")
            if rank_me() == 0:
                target = GlobalPtr(1, g.offset, g.ts)
                rput(
                    5,
                    target,
                    operation_cx.as_future()
                    | remote_cx.as_rpc(lambda: hits.append(rank_me())),
                ).wait()
            from repro import barrier, progress

            barrier()
            progress()
            barrier()
            return hits

        res = spmd_run(body, ranks=2)
        # the callback ran on rank 1 (recorded rank_me()==1 in its closure)
        assert res.values[0] == [] or res.values[0] == [1]
        assert 1 in (res.values[0] + res.values[1])

    def test_mixed_promise_and_future(self, ctx):
        g = new_("u64")
        p = Promise()
        fut = rput(
            1, g, operation_cx.as_future() | operation_cx.as_promise(p)
        )
        fut.wait()
        p.finalize().wait()
        assert rget(g).wait() == 1


class TestCrossRankOnNode:
    """All of the paper's timed communication: co-located ranks via PSHM."""

    @pytest.mark.parametrize("version", ALL_VERSIONS)
    def test_put_to_peer(self, version):
        def body():
            from repro import barrier

            g = new_("u64", 0)
            barrier()
            if rank_me() == 0:
                rput(1234, GlobalPtr(1, g.offset, g.ts)).wait()
            barrier()
            return g.local().read()

        res = spmd_run(body, ranks=2, version=version)
        assert res.values[1] == 1234

    def test_get_from_peer(self):
        def body():
            from repro import barrier

            g = new_("u64", 10 + rank_me())
            barrier()
            other = GlobalPtr((rank_me() + 1) % 2, g.offset, g.ts)
            val = rget(other).wait()
            barrier()
            return val

        res = spmd_run(body, ranks=2)
        assert res.values == [11, 10]

    def test_all_pairs_puts(self):
        def body():
            from repro import barrier

            n = 4
            g = new_array("u64", n)
            barrier()
            for r in range(n):
                rput(rank_me(), GlobalPtr(r, g.offset, g.ts) + rank_me()).wait()
            barrier()
            return list(g.local().view(n))

        res = spmd_run(body, ranks=4)
        assert all(v == [0, 1, 2, 3] for v in res.values)
