"""Tests for the ``python -m repro.bench`` command-line figure runner."""

import argparse
import json
import subprocess
import sys

import pytest

from repro.bench.__main__ import _resolve_artifact_out, build_parser, main


def run_cli(*args, timeout=240):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return proc


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_micro_defaults(self):
        args = build_parser().parse_args(["micro"])
        assert args.machine == "intel"
        assert args.ops == 150

    def test_machine_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["micro", "--machine", "cray"])

    def test_gups_options(self):
        args = build_parser().parse_args(
            ["gups", "--machine", "ibm", "--ranks", "4", "--updates", "8"]
        )
        assert (args.machine, args.ranks, args.updates) == ("ibm", 4, 8)


class TestInProcess:
    def test_micro_prints_figure(self, capsys):
        main(["micro", "--machine", "intel", "--ops", "20",
              "--samples", "1"])
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "eager speedup" in out

    def test_gups_prints_figure(self, capsys):
        main(["gups", "--machine", "marvell", "--ranks", "4",
              "--table-log2", "10", "--updates", "16", "--batch", "8"])
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "rma_future" in out

    def test_offnode(self, capsys):
        main(["offnode", "--ops", "5"])
        out = capsys.readouterr().out
        assert "Off-node" in out
        assert "delta" in out

    def test_matching_small(self, capsys):
        main(["matching", "--ranks", "2", "--scale", "1"])
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "youtube" in out


class TestArtifactParsers:
    def test_ab_defaults(self):
        args = build_parser().parse_args(["ab"])
        assert args.spec is None and args.out is None
        assert not args.quick and not args.gate and not args.force

    def test_ab_spec_repeatable(self):
        args = build_parser().parse_args(
            ["ab", "--spec", "wake_scan", "--spec", "eager_defer"]
        )
        assert args.spec == ["wake_scan", "eager_defer"]

    def test_ab_unknown_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ab", "--spec", "nope"])

    def test_artifact_out_defaults_to_none(self):
        # --out None lets quick runs pick BENCH_<name>.quick.json
        for cmd in ("sched", "serve", "cont"):
            args = build_parser().parse_args([cmd])
            assert args.out is None and not args.force

    def test_validate_paths(self):
        args = build_parser().parse_args(["validate", "a.json", "b.json"])
        assert args.paths == ["a.json", "b.json"]


class TestQuickArtifactNaming:
    def _args(self, **kw):
        base = dict(out=None, quick=False, force=False)
        base.update(kw)
        return argparse.Namespace(**base)

    def test_full_default_is_canonical(self):
        assert _resolve_artifact_out("sched", self._args()) == (
            "BENCH_sched.json"
        )

    def test_quick_default_has_quick_marker(self):
        assert _resolve_artifact_out("sched", self._args(quick=True)) == (
            "BENCH_sched.quick.json"
        )

    def test_quick_refuses_to_clobber_full_artifact(self, tmp_path):
        target = tmp_path / "BENCH_x.json"
        target.write_text(json.dumps({"bench": "sched", "quick": False}))
        with pytest.raises(SystemExit, match="refusing to overwrite"):
            _resolve_artifact_out(
                "sched", self._args(out=str(target), quick=True)
            )

    def test_force_overrides_refusal(self, tmp_path):
        target = tmp_path / "BENCH_x.json"
        target.write_text(json.dumps({"bench": "sched", "quick": False}))
        out = _resolve_artifact_out(
            "sched", self._args(out=str(target), quick=True, force=True)
        )
        assert out == str(target)

    def test_quick_over_quick_is_fine(self, tmp_path):
        target = tmp_path / "BENCH_x.quick.json"
        target.write_text(json.dumps({"bench": "sched", "quick": True}))
        out = _resolve_artifact_out(
            "sched", self._args(out=str(target), quick=True)
        )
        assert out == str(target)

    def test_explicit_out_to_fresh_path_is_fine(self, tmp_path):
        out = _resolve_artifact_out(
            "sched", self._args(out=str(tmp_path / "new.json"), quick=True)
        )
        assert out.endswith("new.json")


class TestAbInProcess:
    def test_ab_out_with_multiple_specs_rejected(self):
        with pytest.raises(SystemExit, match="single spec"):
            main(["ab", "--out", "x.json"])

    def test_ab_gate_missing_baseline_fails(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="unreadable"):
            main(["ab", "--spec", "wake_scan", "--quick", "--gate"])

    def test_ab_quick_writes_quick_artifact_and_gates(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        main(["ab", "--spec", "wake_scan", "--quick"])
        art = tmp_path / "BENCH_ab_wake_scan.quick.json"
        assert art.exists()
        doc = json.loads(art.read_text())
        assert doc["quick"] is True and doc["bench"] == "ab"
        # second run gates clean against the first (determinism)
        main(["ab", "--spec", "wake_scan", "--quick", "--gate",
              "--baseline", str(art)])
        assert "gate OK" in capsys.readouterr().out

    def test_validate_runs_over_artifacts(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        main(["validate"])
        assert "no BENCH_" in capsys.readouterr().out


class TestSubprocess:
    def test_help(self):
        proc = run_cli("--help")
        assert proc.returncode == 0
        assert "micro" in proc.stdout and "matching" in proc.stdout

    def test_micro_subprocess(self):
        proc = run_cli("micro", "--machine", "ibm", "--ops", "20",
                       "--samples", "1")
        assert proc.returncode == 0
        assert "Figure 3" in proc.stdout
