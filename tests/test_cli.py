"""Tests for the ``python -m repro.bench`` command-line figure runner."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import build_parser, main


def run_cli(*args, timeout=240):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return proc


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_micro_defaults(self):
        args = build_parser().parse_args(["micro"])
        assert args.machine == "intel"
        assert args.ops == 150

    def test_machine_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["micro", "--machine", "cray"])

    def test_gups_options(self):
        args = build_parser().parse_args(
            ["gups", "--machine", "ibm", "--ranks", "4", "--updates", "8"]
        )
        assert (args.machine, args.ranks, args.updates) == ("ibm", 4, 8)


class TestInProcess:
    def test_micro_prints_figure(self, capsys):
        main(["micro", "--machine", "intel", "--ops", "20",
              "--samples", "1"])
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "eager speedup" in out

    def test_gups_prints_figure(self, capsys):
        main(["gups", "--machine", "marvell", "--ranks", "4",
              "--table-log2", "10", "--updates", "16", "--batch", "8"])
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "rma_future" in out

    def test_offnode(self, capsys):
        main(["offnode", "--ops", "5"])
        out = capsys.readouterr().out
        assert "Off-node" in out
        assert "delta" in out

    def test_matching_small(self, capsys):
        main(["matching", "--ranks", "2", "--scale", "1"])
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "youtube" in out


class TestSubprocess:
    def test_help(self):
        proc = run_cli("--help")
        assert proc.returncode == 0
        assert "micro" in proc.stdout and "matching" in proc.stdout

    def test_micro_subprocess(self):
        proc = run_cli("micro", "--machine", "ibm", "--ops", "20",
                       "--samples", "1")
        assert proc.returncode == 0
        assert "Figure 3" in proc.stdout
