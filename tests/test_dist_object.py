"""Tests for dist_object: collective identity, fetch, late construction."""

import pytest

from repro import DistObject, barrier, progress, rank_me, rank_n
from repro.errors import UpcxxError
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run


class TestLocal:
    def test_local_value(self, ctx):
        d = DistObject({"x": 1})
        assert d.local() == {"x": 1}

    def test_update_local(self, ctx):
        d = DistObject(1)
        d.update_local(2)
        assert d.local() == 2

    def test_ids_increment_per_construction(self, ctx):
        a = DistObject("a")
        b = DistObject("b")
        assert b.id == a.id + 1
        assert a.local() == "a" and b.local() == "b"

    def test_delete_frees_entry(self, ctx):
        d = DistObject(5)
        d.delete()
        with pytest.raises(UpcxxError):
            d.local()
        d.delete()  # idempotent

    def test_fetch_self(self):
        def body():
            d = DistObject(rank_me() * 10)
            return d.fetch(rank_me()).wait()

        assert spmd_run(body, ranks=1).values == [0]


class TestFetch:
    def test_fetch_every_rank(self):
        def body():
            d = DistObject(("payload", rank_me()))
            barrier()
            got = [d.fetch(r).wait() for r in range(rank_n())]
            barrier()
            return got

        res = spmd_run(body, ranks=3)
        expected = [("payload", r) for r in range(3)]
        assert all(v == expected for v in res.values)

    def test_identity_matches_construction_order(self):
        """Two dist_objects constructed in the same order pair up by
        construction index, not by value."""

        def body():
            first = DistObject(f"first-{rank_me()}")
            second = DistObject(f"second-{rank_me()}")
            barrier()
            peer = (rank_me() + 1) % rank_n()
            got = (first.fetch(peer).wait(), second.fetch(peer).wait())
            barrier()
            return got

        res = spmd_run(body, ranks=2)
        assert res.values[0] == ("first-1", "second-1")
        assert res.values[1] == ("first-0", "second-0")

    def test_fetch_invalid_rank(self, ctx):
        d = DistObject(0)
        with pytest.raises(UpcxxError):
            d.fetch(99)

    def test_fetch_races_construction(self):
        """A fetch that arrives before the target constructs its object
        parks until construction (UPC++ guarantee)."""

        def body():
            ctx = current_ctx()
            if rank_me() == 0:
                d = DistObject("early")
                fut = d.fetch(1)  # rank 1 hasn't constructed yet
                val = fut.wait()
                barrier()
                return val
            # rank 1: deliver the incoming fetch *before* constructing
            ctx.progress()
            d = DistObject("late")
            ctx.progress()  # now serve any parked reply
            barrier()
            return d.local()

        res = spmd_run(body, ranks=2)
        # rank 0 fetched rank 1's (late-constructed) value
        assert res.values == ["late", "late"]

    def test_fetch_after_delete_rejected(self, ctx):
        d = DistObject(1)
        d.delete()
        with pytest.raises(UpcxxError):
            d.fetch(0)


class TestPointerExchangeIdiom:
    def test_exchange_global_pointers(self):
        """The canonical use: exchanging shared-heap pointers."""

        def body():
            from repro import new_, rget

            g = new_("u64", 100 + rank_me())
            d = DistObject(g)
            barrier()
            peer = (rank_me() + 1) % rank_n()
            peer_ptr = d.fetch(peer).wait()
            val = rget(peer_ptr).wait()
            barrier()
            return val

        res = spmd_run(body, ranks=4)
        assert res.values == [101, 102, 103, 100]
