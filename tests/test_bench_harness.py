"""Tests for the benchmark harness (small sizes — the full grids live in
benchmarks/)."""

import pytest

from repro.bench.harness import (
    MICRO_OPS,
    gups_grid,
    graph_localities,
    micro_grid,
    offnode_grid,
    run_micro,
)
from repro.runtime.config import Version

V0 = Version.V2021_3_0
VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER


class TestRunMicro:
    def test_returns_per_op_time(self):
        r = run_micro("put", VE, "generic", n_ops=20, n_samples=1)
        assert r.ns_per_op > 0
        assert r.op == "put" and r.n_ops == 20

    def test_fadd_nv_missing_on_legacy(self):
        assert run_micro("fadd_nv", V0, "generic", n_ops=5) is None

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            run_micro("swap", VE, "generic", n_ops=5)

    def test_deterministic_across_samples(self):
        a = run_micro("put", VE, "generic", n_ops=20, n_samples=1)
        b = run_micro("put", VE, "generic", n_ops=20, n_samples=3)
        assert a.ns_per_op == pytest.approx(b.ns_per_op)

    @pytest.mark.parametrize("op", MICRO_OPS)
    def test_every_op_runs(self, op):
        r = run_micro(op, VE, "generic", n_ops=10, n_samples=1)
        assert r is not None and r.ns_per_op > 0


class TestGrids:
    def test_micro_grid_complete(self):
        grid = micro_grid("generic", ops=("put", "fadd_nv"), n_ops=10,
                          n_samples=1)
        assert len(grid) == 6
        assert grid[("fadd_nv", V0)] is None
        assert grid[("put", VE)].ns_per_op > 0

    def test_gups_grid_small(self):
        grid = gups_grid(
            "generic",
            ranks=2,
            variants=("manual", "amo_promise"),
            table_log2=9,
            updates_per_rank=16,
            batch=8,
        )
        assert len(grid) == 6
        assert grid[("amo_promise", VE)].matches_oracle

    def test_graph_localities_all_inputs(self):
        loc = graph_localities(ranks=4, scale=1)
        assert set(loc) == {
            "channel", "venturi", "random", "delaunay", "youtube"
        }
        for v in loc.values():
            assert 0 <= v["cross_rank"] <= 1

    def test_offnode_grid(self):
        grid = offnode_grid("generic", ops=("put",), n_ops=5)
        assert grid[("put", VD)] > 0
        assert grid[("put", VE)] >= grid[("put", VD)]
