"""Shared fixtures.

Most unit tests exercise the runtime through the *ambient* single-rank
world (created lazily by ``current_ctx()`` outside ``spmd_run``); the
autouse fixture discards it between tests so each test gets fresh
segments, clocks and counters.
"""

from __future__ import annotations

import pytest

from repro.runtime.config import RuntimeConfig, Version, flags_for
from repro.runtime.context import (
    current_ctx,
    reset_ambient_ctx,
    set_current_ctx,
)
from repro.runtime.runtime import build_world

ALL_VERSIONS = (
    Version.V2021_3_0,
    Version.V2021_3_6_DEFER,
    Version.V2021_3_6_EAGER,
)

VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER


# ---------------------------------------------------------------------------
# shared world/flags helpers (used by test_agg_adaptive, test_obs, the
# adaptive-progress and fuzz suites; import as
# ``from tests.conftest import adaptive_flags, ...``)
# ---------------------------------------------------------------------------


def adaptive_flags(version=VE, **kw):
    """Aggregation + adaptive-batching flags with tight test-sized knobs."""
    defaults = dict(
        am_aggregation=True,
        agg_adaptive=True,
        agg_max_entries=8,
        agg_min_entries=2,
        agg_max_bytes=4096,
        agg_min_bytes=64,
        agg_max_age_ticks=1000.0,
    )
    defaults.update(kw)
    return flags_for(version).replace(**defaults)


def adaptive_world(ranks=4, n_nodes=2, conduit="ibv", **kw):
    """Ranks 0/1 on node 0, ranks 2/3 on node 1, adaptive batching on."""
    return build_world(
        RuntimeConfig(conduit=conduit, flags=adaptive_flags(**kw)),
        ranks=ranks,
        n_nodes=n_nodes,
    )


def send_agg_am(w, src, dst, sink=None, nbytes=8, label="am"):
    """One aggregatable AM from ``src`` to ``dst`` (appends ``dst`` to
    ``sink`` on delivery when a sink list is given)."""
    handler = (lambda t: None) if sink is None else (
        lambda t, s=sink: s.append(dst)
    )
    w.conduit.send_am(
        w.contexts[src], dst, handler, nbytes=nbytes, label=label,
        aggregatable=True,
    )


def obs_flags(version):
    """The version's standard flags with observability spans enabled."""
    return flags_for(version).replace(obs_spans=True)


def progress_adaptive_flags(version=VD, **kw):
    """Adaptive-progress flags with tight test-sized knobs: small batch
    cap, short age bound, and a modest poll-thinning ceiling so capped
    drains, aged mini-drains, and elided polls all fire in small runs."""
    defaults = dict(
        progress_adaptive=True,
        progress_min_batch=2,
        progress_max_batch=8,
        progress_min_poll_interval=1,
        progress_max_poll_interval=16,
        progress_max_age_ticks=2000.0,
    )
    defaults.update(kw)
    return flags_for(version).replace(**defaults)


@pytest.fixture(autouse=True)
def _fresh_ambient_world():
    """Isolate tests from each other's ambient world state."""
    reset_ambient_ctx()
    yield
    reset_ambient_ctx()


@pytest.fixture
def ctx():
    """The ambient single-rank context (generic profile, smp conduit)."""
    return current_ctx()


@pytest.fixture
def versioned_ctx():
    """Factory: bind the calling thread to a fresh single-rank world built
    for a given version/machine; restores the ambient world afterwards."""
    created = []

    def make(
        version: Version = Version.V2021_3_6_EAGER,
        machine: str = "generic",
        conduit: str = "smp",
        flags=None,
    ):
        config = RuntimeConfig(
            version=version, machine=machine, conduit=conduit, flags=flags
        )
        world = build_world(config)
        set_current_ctx(world.contexts[0])
        created.append(world)
        return world.contexts[0]

    yield make
    set_current_ctx(None)
    reset_ambient_ctx()


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run slow integration tests",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running integration test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
