"""Shared fixtures.

Most unit tests exercise the runtime through the *ambient* single-rank
world (created lazily by ``current_ctx()`` outside ``spmd_run``); the
autouse fixture discards it between tests so each test gets fresh
segments, clocks and counters.
"""

from __future__ import annotations

import pytest

from repro.runtime.config import RuntimeConfig, Version, flags_for
from repro.runtime.context import (
    current_ctx,
    reset_ambient_ctx,
    set_current_ctx,
)
from repro.runtime.runtime import build_world

ALL_VERSIONS = (
    Version.V2021_3_0,
    Version.V2021_3_6_DEFER,
    Version.V2021_3_6_EAGER,
)


@pytest.fixture(autouse=True)
def _fresh_ambient_world():
    """Isolate tests from each other's ambient world state."""
    reset_ambient_ctx()
    yield
    reset_ambient_ctx()


@pytest.fixture
def ctx():
    """The ambient single-rank context (generic profile, smp conduit)."""
    return current_ctx()


@pytest.fixture
def versioned_ctx():
    """Factory: bind the calling thread to a fresh single-rank world built
    for a given version/machine; restores the ambient world afterwards."""
    created = []

    def make(
        version: Version = Version.V2021_3_6_EAGER,
        machine: str = "generic",
        conduit: str = "smp",
        flags=None,
    ):
        config = RuntimeConfig(
            version=version, machine=machine, conduit=conduit, flags=flags
        )
        world = build_world(config)
        set_current_ctx(world.contexts[0])
        created.append(world)
        return world.contexts[0]

    yield make
    set_current_ctx(None)
    reset_ambient_ctx()


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run slow integration tests",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running integration test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
