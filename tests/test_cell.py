"""Unit tests for the promise-cell state machine and allocation factories."""

import pytest

from repro.core.cell import (
    PromiseCell,
    alloc_cell,
    ready_cell,
    ready_unit_cell,
)
from repro.errors import FutureError, PromiseError
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction


class TestStateMachine:
    def test_fresh_cell_not_ready(self):
        assert not PromiseCell(deps=1).ready

    def test_zero_deps_valueless_is_ready(self):
        assert PromiseCell(nvalues=0, deps=0).ready

    def test_fulfill_readies(self):
        c = PromiseCell(deps=1)
        assert c.fulfill() is True
        assert c.ready

    def test_partial_fulfill_not_ready(self):
        c = PromiseCell(deps=3)
        assert c.fulfill() is False
        assert c.fulfill() is False
        assert not c.ready
        assert c.fulfill() is True

    def test_fulfill_many_at_once(self):
        c = PromiseCell(deps=5)
        c.fulfill(5)
        assert c.ready

    def test_over_fulfillment_rejected(self):
        c = PromiseCell(deps=1)
        c.fulfill()
        with pytest.raises(PromiseError):
            c.fulfill()

    def test_negative_fulfill_rejected(self):
        with pytest.raises(PromiseError):
            PromiseCell(deps=1).fulfill(-1)

    def test_zero_fulfill_noop(self):
        c = PromiseCell(deps=1)
        assert c.fulfill(0) is False

    def test_add_deps(self):
        c = PromiseCell(deps=1)
        c.add_deps(2)
        c.fulfill(2)
        assert not c.ready
        c.fulfill()
        assert c.ready

    def test_add_deps_to_ready_rejected(self):
        c = PromiseCell(deps=0)
        with pytest.raises(PromiseError):
            c.add_deps(1)

    def test_negative_initial_deps_rejected(self):
        with pytest.raises(PromiseError):
            PromiseCell(deps=-1)


class TestValues:
    def test_value_cell_needs_values_to_ready(self):
        c = PromiseCell(nvalues=1, deps=1)
        with pytest.raises(PromiseError):
            c.fulfill()

    def test_set_values_then_fulfill(self):
        c = PromiseCell(nvalues=2, deps=1)
        c.set_values((1, 2))
        c.fulfill()
        assert c.result_tuple() == (1, 2)

    def test_wrong_arity_rejected(self):
        c = PromiseCell(nvalues=2, deps=1)
        with pytest.raises(PromiseError):
            c.set_values((1,))

    def test_double_set_rejected(self):
        c = PromiseCell(nvalues=1, deps=1)
        c.set_values((1,))
        with pytest.raises(PromiseError):
            c.set_values((2,))

    def test_result_of_nonready_rejected(self):
        with pytest.raises(FutureError):
            PromiseCell(deps=1).result_tuple()


class TestCallbacks:
    def test_callback_fires_on_ready(self):
        c = PromiseCell(nvalues=1, deps=1)
        got = []
        c.add_callback(got.append)
        c.set_values((42,))
        c.fulfill()
        assert got == [(42,)]

    def test_callback_on_already_ready_runs_immediately(self):
        c = PromiseCell(deps=0)
        got = []
        c.add_callback(got.append)
        assert got == [()]

    def test_multiple_callbacks_in_order(self):
        c = PromiseCell(deps=1)
        order = []
        c.add_callback(lambda _: order.append("a"))
        c.add_callback(lambda _: order.append("b"))
        c.fulfill()
        assert order == ["a", "b"]

    def test_callbacks_fire_once(self):
        c = PromiseCell(deps=2)
        count = []
        c.add_callback(lambda _: count.append(1))
        c.fulfill()
        c.fulfill()
        assert len(count) == 1


class TestSharedCell:
    def test_shared_cell_immutable(self):
        c = PromiseCell(deps=0, shared=True)
        with pytest.raises(PromiseError):
            c.fulfill()
        with pytest.raises(PromiseError):
            c.add_deps(1)
        with pytest.raises(PromiseError):
            c.set_values(())


class TestFactories:
    def test_alloc_cell_charges(self, ctx):
        before = ctx.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        alloc_cell(ctx)
        assert ctx.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before + 1
        assert ctx.costs.count(CostAction.HEAP_FREE) >= 1

    def test_ready_cell_holds_values_and_charges(self, ctx):
        before = ctx.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        c = ready_cell(ctx, (7, 8))
        assert c.ready and c.result_tuple() == (7, 8)
        assert ctx.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before + 1

    def test_ready_unit_cell_uses_shared_cell_on_36(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        before = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        cell = ready_unit_cell(c)
        assert cell is c.world.shared_ready_cell
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before

    def test_ready_unit_cell_allocates_on_2021_3_0(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_0)
        before = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        cell = ready_unit_cell(c)
        assert cell is not c.world.shared_ready_cell
        assert cell.ready
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before + 1
