"""Smoke tests running every example script end-to-end (small sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "2021.3.6-defer" in out
        assert "2021.3.6-eager" in out
        assert "promise_cells_allocated" in out

    def test_completions_tour(self):
        out = run_example("completions_tour.py")
        assert "callback deferred to wait()" in out  # defer build
        assert "callback ran during .then()" in out  # eager build
        assert "as_eager_future was ready at initiation" in out

    def test_gups_demo_small(self):
        out = run_example("gups_demo.py", "4", "32")
        assert "rma_promise" in out
        assert "match the serial oracle: True" in out

    @pytest.mark.slow
    def test_graph_matching_demo_small(self):
        out = run_example("graph_matching_demo.py", "4", "1")
        assert "youtube" in out
        assert "eager speedup" in out

    def test_dht_demo_small(self):
        out = run_example("dht_demo.py", "4", "24")
        assert "lookups correct: True" in out

    def test_stencil_demo_small(self):
        out = run_example("stencil_demo.py", "4")
        assert "eager gain" in out
        assert "Jacobi stencil" in out


class TestTools:
    def test_diagnose_tool(self):
        import subprocess
        import sys
        from pathlib import Path

        tools = Path(__file__).parent.parent / "tools"
        proc = subprocess.run(
            [sys.executable, str(tools / "diagnose.py"), "intel"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-1000:]
        assert "heap_alloc_promise_cell" in proc.stdout
        assert "2021.3.6-eager" in proc.stdout
