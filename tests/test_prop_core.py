"""Property-based tests (hypothesis) for the core future/promise machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cell import PromiseCell
from repro.core.future import Future, make_future
from repro.core.promise import Promise
from repro.core.when_all import when_all
from repro.runtime.config import Version
from repro.runtime.context import (
    reset_ambient_ctx,
    set_current_ctx,
)
from repro.runtime.runtime import build_world
from repro.runtime.config import RuntimeConfig

# strategy: a "future spec" is (ready?, values tuple)
value = st.integers(min_value=-(10**6), max_value=10**6)
spec = st.tuples(st.booleans(), st.lists(value, max_size=3))
specs = st.lists(spec, max_size=6)


def bind(version):
    world = build_world(RuntimeConfig(version=version))
    set_current_ctx(world.contexts[0])


def build_future(ready, values):
    if ready:
        return make_future(*values), None
    cell = PromiseCell(nvalues=len(values), deps=1)
    return Future(cell), cell


def complete(cell, values):
    if cell.nvalues:
        cell.values = tuple(values)
    cell.fulfill()


class TestWhenAllAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(specs=specs)
    def test_value_concatenation_legacy_vs_optimized(self, specs):
        """Both when_all implementations deliver the same concatenated
        values in the same order, regardless of readiness pattern."""
        results = {}
        for version in (Version.V2021_3_0, Version.V2021_3_6_EAGER):
            bind(version)
            futs, cells = [], []
            for ready, values in specs:
                f, cell = build_future(ready, values)
                futs.append(f)
                cells.append((cell, values))
            combined = when_all(*futs)
            for cell, values in cells:
                if cell is not None:
                    complete(cell, values)
            assert combined._cell.ready
            results[version] = combined.result_tuple()
        set_current_ctx(None)
        reset_ambient_ctx()
        assert results[Version.V2021_3_0] == results[Version.V2021_3_6_EAGER]
        expected = tuple(v for _, vals in specs for v in vals)
        assert results[Version.V2021_3_0] == expected

    @settings(max_examples=40, deadline=None)
    @given(specs=specs)
    def test_readiness_iff_all_inputs_ready(self, specs):
        bind(Version.V2021_3_6_EAGER)
        futs, cells = [], []
        for ready, values in specs:
            f, cell = build_future(ready, values)
            futs.append(f)
            if cell is not None:
                cells.append((cell, values))
        combined = when_all(*futs)
        assert combined._cell.ready == (not cells)
        for i, (cell, values) in enumerate(cells):
            assert not combined._cell.ready
            complete(cell, values)
        assert combined._cell.ready
        set_current_ctx(None)
        reset_ambient_ctx()

    @settings(max_examples=40, deadline=None)
    @given(
        left=st.integers(0, 5),
        right=st.integers(0, 5),
    )
    def test_associativity_of_readiness(self, left, right):
        """when_all(when_all(a...), b...) readies exactly when the flat
        when_all(a..., b...) does."""
        bind(Version.V2021_3_6_EAGER)
        lcells = [PromiseCell(deps=1) for _ in range(left)]
        rcells = [PromiseCell(deps=1) for _ in range(right)]
        nested = when_all(
            when_all(*[Future(c) for c in lcells]),
            *[Future(c) for c in rcells],
        )
        flat = when_all(
            *[Future(c) for c in lcells + rcells],
        )
        for c in lcells + rcells:
            assert nested._cell.ready == flat._cell.ready
            c.fulfill()
        assert nested._cell.ready and flat._cell.ready
        set_current_ctx(None)
        reset_ambient_ctx()


class TestPromiseCounterLaws:
    @settings(max_examples=60, deadline=None)
    @given(
        chunks=st.lists(st.integers(1, 10), max_size=8),
        finalize_at=st.integers(0, 8),
    )
    def test_ready_iff_all_fulfilled_and_finalized(self, chunks, finalize_at):
        reset_ambient_ctx()
        p = Promise()
        total = sum(chunks)
        p.require_anonymous(total)
        finalized = False
        for i, c in enumerate(chunks):
            if i == finalize_at:
                p.finalize()
                finalized = True
            p.fulfill_anonymous(c)
            # ready only once everything is fulfilled AND finalized
            done = finalized and sum(chunks[: i + 1]) == total
            assert p.get_future()._cell.ready == done
        if not finalized:
            assert not p.get_future()._cell.ready
            p.finalize()
        assert p.get_future()._cell.ready

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(0, 50))
    def test_interleaved_require_fulfill(self, n):
        reset_ambient_ctx()
        p = Promise()
        outstanding = 0
        for i in range(n):
            p.require_anonymous(1)
            outstanding += 1
            if i % 3 == 0:
                p.fulfill_anonymous(1)
                outstanding -= 1
        f = p.finalize()
        assert f._cell.ready == (outstanding == 0)
        if outstanding:
            p.fulfill_anonymous(outstanding)
        assert f._cell.ready


class TestThenLaws:
    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(value, min_size=1, max_size=5))
    def test_then_chain_equals_composition(self, values):
        reset_ambient_ctx()
        f = make_future(0)
        total = 0
        for v in values:
            f = f.then(lambda acc, v=v: acc + v)
            total += v
        assert f.result() == total
