"""Tests for the exception hierarchy and error-path behaviours."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.NotInitializedError,
            errors.BadSharedAlloc,
            errors.SegmentError,
            errors.InvalidGlobalPointer,
            errors.LocalityError,
            errors.FutureError,
            errors.PromiseError,
            errors.CompletionError,
            errors.AtomicDomainError,
            errors.SerializationError,
            errors.DeadlockError,
            errors.SchedulerError,
            errors.ProgressError,
            errors.RpcError,
        ],
    )
    def test_all_derive_from_upcxx_error(self, exc):
        assert issubclass(exc, errors.UpcxxError)
        assert issubclass(exc, RuntimeError)

    def test_bad_shared_alloc_is_memory_error(self):
        assert issubclass(errors.BadSharedAlloc, MemoryError)

    def test_locality_error_is_invalid_pointer(self):
        assert issubclass(errors.LocalityError, errors.InvalidGlobalPointer)

    def test_not_initialized_message(self):
        e = errors.NotInitializedError("rput")
        assert "rput" in str(e)
        assert "spmd_run" in str(e)

    def test_catch_all_family(self):
        with pytest.raises(errors.UpcxxError):
            raise errors.DeadlockError("hang")


class TestErrorPaths:
    def test_require_spmd_ctx_outside_world(self):
        from repro.runtime.context import (
            current_ctx_or_none,
            require_spmd_ctx,
            set_current_ctx,
        )

        saved = current_ctx_or_none()
        set_current_ctx(None)
        try:
            with pytest.raises(errors.NotInitializedError):
                require_spmd_ctx()
        finally:
            set_current_ctx(saved)

    def test_rank_failure_tears_down_whole_job(self):
        from repro import barrier, rank_me
        from repro.runtime.runtime import spmd_run

        def body():
            if rank_me() == 2:
                raise errors.SegmentError("synthetic")
            barrier()  # would hang forever without teardown

        with pytest.raises(errors.SegmentError, match="synthetic"):
            spmd_run(body, ranks=4)

    def test_error_in_progress_callback_propagates(self):
        from repro.runtime.runtime import spmd_run
        from repro.runtime.context import current_ctx

        def body():
            ctx = current_ctx()
            ctx.progress_engine.enqueue_deferred(
                lambda: (_ for _ in ()).throw(ValueError("from callback"))
            )
            ctx.progress()

        with pytest.raises(ValueError, match="from callback"):
            spmd_run(body, ranks=1)
