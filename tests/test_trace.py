"""Tests for the execution tracer."""

from repro import new_, rput
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction
from repro.sim.trace import Tracer


class TestRecording:
    def test_attach_records(self, ctx):
        tr = Tracer()
        tr.attach(ctx)
        ctx.charge(CostAction.CPU_LOAD)
        tr.detach(ctx)
        ctx.charge(CostAction.CPU_LOAD)
        assert len(tr) == 1
        assert tr.events[0].action is CostAction.CPU_LOAD

    def test_timestamps_monotone(self, ctx):
        tr = Tracer()
        tr.attach(ctx)
        for _ in range(5):
            ctx.charge(CostAction.PROGRESS_DISPATCH)
        ts = [e.t_ns for e in tr.events]
        assert ts == sorted(ts)

    def test_counts_aggregate_times(self, ctx):
        tr = Tracer()
        tr.attach(ctx)
        ctx.charge(CostAction.CPU_LOAD, times=4)
        assert tr.counts()[CostAction.CPU_LOAD] == 4

    def test_capacity_drops(self, ctx):
        tr = Tracer(capacity=2)
        tr.attach(ctx)
        for _ in range(5):
            ctx.charge(CostAction.CPU_LOAD)
        assert len(tr) == 2
        assert tr.dropped == 3

    def test_filter_by_action_and_rank(self, ctx):
        tr = Tracer()
        tr.attach(ctx)
        ctx.charge(CostAction.CPU_LOAD)
        ctx.charge(CostAction.CPU_STORE)
        assert len(tr.filter(action=CostAction.CPU_LOAD)) == 1
        assert len(tr.filter(rank=ctx.rank)) == 2
        assert tr.filter(rank=ctx.rank + 1) == []

    def test_first_last(self, ctx):
        tr = Tracer()
        tr.attach(ctx)
        ctx.charge(CostAction.CPU_LOAD)
        ctx.clock.advance(100)
        ctx.charge(CostAction.CPU_LOAD)
        assert tr.first(CostAction.CPU_LOAD).t_ns < tr.last(
            CostAction.CPU_LOAD
        ).t_ns
        assert tr.first(CostAction.BARRIER) is None


class TestOrderingClaims:
    def test_defer_dispatch_happens_after_enqueue(self, versioned_ctx):
        """The deferred path's temporal shape: enqueue at initiation,
        dispatch strictly later (inside wait's progress)."""
        c = versioned_ctx(Version.V2021_3_6_DEFER)
        tr = Tracer()
        tr.attach(c)
        g = new_("u64")
        rput(1, g).wait()
        enq = tr.first(CostAction.PROGRESS_QUEUE_ENQUEUE)
        disp = tr.first(CostAction.PROGRESS_DISPATCH)
        assert enq is not None and disp is not None
        assert enq.t_ns < disp.t_ns

    def test_eager_has_no_dispatch_at_all(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        tr = Tracer()
        tr.attach(c)
        g = new_("u64")
        rput(1, g).wait()
        assert tr.first(CostAction.PROGRESS_DISPATCH) is None
        assert tr.first(CostAction.MEMCPY_8B) is not None


class TestRendering:
    def test_timeline_format(self, ctx):
        tr = Tracer()
        tr.attach(ctx)
        ctx.charge(CostAction.CPU_LOAD, times=2)
        text = tr.format_timeline()
        assert "cpu_load x2" in text
        assert "rank" in text

    def test_timeline_truncation(self, ctx):
        tr = Tracer()
        tr.attach(ctx)
        for _ in range(60):
            ctx.charge(CostAction.CPU_LOAD)
        text = tr.format_timeline(limit=10)
        assert "50 more events" in text

    def test_timeline_surfaces_drops_in_header(self, ctx):
        tr = Tracer(capacity=2)
        tr.attach(ctx)
        for _ in range(5):
            ctx.charge(CostAction.CPU_LOAD)
        text = tr.format_timeline()
        first_line = text.splitlines()[0]
        assert "dropped=3" in first_line
        assert "capacity=2" in first_line
        assert "3 events dropped (capacity)" in text

    def test_summary_accounting(self, ctx):
        tr = Tracer(capacity=2)
        tr.attach(ctx)
        assert tr.summary() == {
            "recorded": 0,
            "dropped": 0,
            "capacity": 2,
            "complete": True,
        }
        for _ in range(5):
            ctx.charge(CostAction.CPU_LOAD)
        assert tr.summary() == {
            "recorded": 2,
            "dropped": 3,
            "capacity": 2,
            "complete": False,
        }
