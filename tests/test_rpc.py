"""Tests for RPC, rpc_ff, and payload-size accounting."""

import numpy as np
import pytest

from repro import barrier, new_, progress, rank_me, rget, rpc, rpc_ff, rput
from repro.errors import RpcError, SerializationError, UpcxxError
from repro.memory.global_ptr import GlobalPtr
from repro.rpc.serialization import payload_nbytes
from repro.runtime.runtime import spmd_run


class TestSerialization:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(True) == 8

    def test_bytes(self):
        assert payload_nbytes(b"abc") == 3

    def test_string_utf8(self):
        assert payload_nbytes("héllo") == len("héllo".encode())

    def test_numpy(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_containers_recursive(self):
        assert payload_nbytes([1, 2]) == 24
        assert payload_nbytes({"a": 1}) == 8 + 1 + 8

    def test_pickle_fallback(self):
        import fractions

        assert payload_nbytes(fractions.Fraction(1, 3)) > 0

    def test_unserializable_rejected(self):
        with pytest.raises(SerializationError):
            payload_nbytes(lambda x: x)  # lambdas don't pickle


class TestRpc:
    def test_roundtrip_value(self):
        def body():
            if rank_me() == 0:
                return rpc(1, lambda a, b: a + b, 2, 3).wait()
            barrier()
            return None

        # note: target must progress — barrier provides it
        def body2():
            if rank_me() == 0:
                out = rpc(1, lambda a, b: a + b, 2, 3).wait()
                barrier()
                return out
            barrier()
            return None

        res = spmd_run(body2, ranks=2)
        assert res.values[0] == 5

    def test_rpc_runs_on_target(self):
        def body():
            if rank_me() == 0:
                peer = rpc(1, rank_me).wait()
                barrier()
                return peer
            barrier()
            return None

        assert spmd_run(body, ranks=2).values[0] == 1

    def test_rpc_to_self(self):
        def body():
            return rpc(0, lambda: "loopback").wait()

        assert spmd_run(body, ranks=1).values[0] == "loopback"

    def test_rpc_returning_future_defers_reply(self):
        """A callback returning a future delays the reply until it
        readies (UPC++ semantics)."""

        def body():
            g = new_("u64", 9)
            barrier()
            if rank_me() == 0:
                gp = GlobalPtr(1, g.offset, g.ts)
                val = rpc(1, lambda: rget(gp)).wait()
                barrier()
                return val
            barrier()
            return None

        assert spmd_run(body, ranks=2).values[0] == 9

    def test_rpc_exception_propagates_as_rpc_error(self):
        def boom():
            raise ValueError("remote failure")

        def body():
            if rank_me() == 0:
                fut = rpc(1, boom)
                fut.wait()
            barrier()

        with pytest.raises(RpcError, match="remote failure"):
            spmd_run(body, ranks=2)

    def test_invalid_target(self):
        def body():
            rpc(5, lambda: None)

        with pytest.raises(UpcxxError):
            spmd_run(body, ranks=2)

    def test_rpc_ff_side_effect(self):
        def body():
            g = new_("u64", 0)
            barrier()
            if rank_me() == 0:
                gp = GlobalPtr(1, g.offset, g.ts)
                rpc_ff(1, lambda: rput(77, gp).wait())
            barrier()
            progress()
            barrier()
            return g.local().read()

        res = spmd_run(body, ranks=2)
        assert res.values[1] == 77

    def test_rpc_ff_invalid_target(self):
        def body():
            rpc_ff(9, lambda: None)

        with pytest.raises(UpcxxError):
            spmd_run(body, ranks=2)

    def test_many_rpcs_ordered(self):
        def body():
            log = []
            barrier()
            if rank_me() == 0:
                for i in range(5):
                    rpc_ff(1, lambda i=i: log.append(i))
            barrier()
            progress()
            barrier()
            return log

        res = spmd_run(body, ranks=2)
        # AMs execute in injection order on the target
        combined = res.values[0] + res.values[1]
        assert combined == [0, 1, 2, 3, 4]


class TestRpcCompletions:
    def test_promise_completion(self):
        from repro import Promise, operation_cx

        def body():
            if rank_me() == 0:
                p = Promise()
                out = rpc(
                    1, lambda: 5, comps=operation_cx.as_promise(p)
                )
                assert out is None  # no future requested
                f = p.finalize()
                assert not f.is_ready()  # round trip pending
                f.wait()
                barrier()
                return "done"
            barrier()
            return None

        assert spmd_run(body, ranks=2).values[0] == "done"

    def test_lpc_completion(self):
        from repro import operation_cx

        def body():
            ran = []
            if rank_me() == 0:
                fut = rpc(
                    1,
                    lambda: 9,
                    comps=operation_cx.as_future()
                    | operation_cx.as_lpc(lambda: ran.append("lpc")),
                )
                got = fut.wait()
                progress()  # LPC runs on the initiator's progress
                barrier()
                return (got, ran)
            barrier()
            return None

        got, ran = spmd_run(body, ranks=2).values[0]
        assert got == 9
        assert ran == ["lpc"]

    def test_rpc_future_never_ready_at_initiation(self):
        """Even on the eager build: an RPC cannot complete synchronously."""
        from repro import Version

        def body():
            if rank_me() == 0:
                fut = rpc(1, lambda: 1)
                early = fut.is_ready()
                fut.wait()
                barrier()
                return early
            barrier()
            return None

        res = spmd_run(body, ranks=2, version=Version.V2021_3_6_EAGER)
        assert res.values[0] is False

    def test_remote_event_rejected(self):
        from repro import remote_cx
        from repro.errors import CompletionError

        def body():
            with pytest.raises(CompletionError):
                rpc(0, lambda: 1, comps=remote_cx.as_rpc(lambda: None))

        spmd_run(body, ranks=1)
