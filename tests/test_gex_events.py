"""Tests for the gex_Event-style completion handles."""

import pytest

from repro.gasnet.events import GexEvent


class TestCompleted:
    def test_completed_factory(self):
        e = GexEvent.completed((1, 2))
        assert e.done
        assert e.values == (1, 2)

    def test_callback_on_completed_runs_now(self):
        got = []
        GexEvent.completed((7,)).on_complete(got.append)
        assert got == [(7,)]


class TestPending:
    def test_pending_factory(self):
        e = GexEvent.pending()
        assert not e.done

    def test_signal_fires_callbacks_in_order(self):
        e = GexEvent.pending()
        order = []
        e.on_complete(lambda v: order.append(("a", v)))
        e.on_complete(lambda v: order.append(("b", v)))
        e.signal((42,))
        assert order == [("a", (42,)), ("b", (42,))]
        assert e.done and e.values == (42,)

    def test_callback_after_signal_runs_now(self):
        e = GexEvent.pending()
        e.signal()
        got = []
        e.on_complete(got.append)
        assert got == [()]

    def test_double_signal_rejected(self):
        e = GexEvent.pending()
        e.signal()
        with pytest.raises(RuntimeError):
            e.signal()
