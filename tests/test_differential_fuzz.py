"""Differential fuzzing: eager / defer / adaptive / hinted equivalence.

The tentpole guarantee of the fuzz harness (``repro.fuzz``): for any
generated program, all notification configurations agree on

* final memory state (every rank's table words),
* per-op values (every ``get``/``rpc`` result, in wait order),
* completion counts (futures waited, promises finalized),

and re-running the same (program, mode) pair is bit-identical including
virtual clocks.  Programs are constructed confluent (commutative-only amo
cells, single-writer put cells, phase fences — see
``repro.fuzz.programs``), so any disagreement is a runtime bug, not
program nondeterminism.

The CI ``tier2-fuzz`` job runs the heavier multi-seed sweep through
``python -m repro.fuzz``; this suite keeps one full 200-program seed in
tier 1 plus targeted structure/replay checks.
"""

import random

import pytest

from repro.fuzz import (
    CX_MODES,
    MODES,
    check_program,
    generate_program,
    mode_flags,
    program_from_json,
    program_to_json,
    run_program,
)
from repro.fuzz.runner import _swap_plan

#: the tier-1 sweep seed (CI adds more, plus a run-derived one)
SWEEP_SEED = 1
SWEEP_PROGRAMS = 200


class TestGenerator:
    def test_deterministic(self):
        assert generate_program(42) == generate_program(42)
        assert generate_program(42) != generate_program(43)

    def test_json_round_trip(self):
        for seed in range(20):
            prog = generate_program(seed)
            assert program_from_json(program_to_json(prog)) == prog

    def test_corpus_covers_the_interesting_structure(self):
        """The generated corpus must actually exercise what the harness
        claims to cover: off-node targets, both commutative amo kinds,
        single-writer puts, reply-less rpc_ff, gets, rpcs, wait points."""
        programs = [generate_program(s) for s in range(60)]
        kinds = set()
        offnode = False
        for prog in programs:
            if prog.n_nodes > 1:
                offnode = True
            for ph in prog.phases:
                for rank_ops in ph.ops:
                    for op in rank_ops:
                        kinds.add(op["kind"])
        assert offnode
        assert {
            "put", "get", "amo_xor", "amo_add", "rpc", "rpc_ff",
            "wait_all", "progress",
        } <= kinds

    def test_roles_are_single_writer_and_single_op_kind(self):
        """The confluence argument rests on the role discipline; assert
        the generator never emits an op violating its phase's roles."""
        for seed in range(40):
            prog = generate_program(seed)
            for ph in prog.phases:
                for me, rank_ops in enumerate(ph.ops):
                    for op in rank_ops:
                        if op["kind"] == "put":
                            role = ph.roles[op["owner"]][op["idx"]]
                            assert role == f"put:{me}"
                        elif op["kind"] in ("amo_xor", "amo_add"):
                            role = ph.roles[op["owner"]][op["idx"]]
                            assert role == op["kind"]
                        elif op["kind"] == "rpc_ff":
                            role = ph.roles[op["owner"]][op["idx"]]
                            assert role == "amo_xor"
                        elif op["kind"] == "get":
                            role = ph.roles[op["owner"]][op["idx"]]
                            assert role == "frozen"


class TestModeFlags:
    def test_known_modes(self):
        for mode in MODES:
            version, flags = mode_flags(mode)
            assert flags == flags  # constructible & validated

    def test_adaptive_mode_is_defer_plus_controller(self):
        _, defer = mode_flags("defer")
        _, adaptive = mode_flags("adaptive")
        assert not defer.eager_notification
        assert not defer.progress_adaptive
        assert not adaptive.eager_notification
        assert adaptive.progress_adaptive

    def test_hinted_mode_is_adaptive_plus_wait_hints(self):
        _, adaptive = mode_flags("adaptive")
        _, hinted = mode_flags("hinted")
        assert not adaptive.wait_hints
        assert hinted.wait_hints
        assert hinted.progress_adaptive
        assert hinted.replace(
            wait_hints=False, wait_flush_fill_frac=adaptive.wait_flush_fill_frac
        ) == adaptive

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz mode"):
            mode_flags("bogus")


class TestDifferentialSweep:
    def test_sweep_200_programs_all_modes_agree(self):
        """The headline: 200 generated programs; eager, defer,
        adaptive-progress, and hinted agree on every one."""
        failures = []
        for index in range(SWEEP_PROGRAMS):
            prog = generate_program(SWEEP_SEED * 1_000_003 + index)
            mismatches = check_program(prog)
            if mismatches:
                failures.append((index, prog.seed, mismatches))
        assert not failures, f"differential mismatches: {failures[:5]}"

    def test_values_actually_recorded(self):
        """Guard against a vacuous sweep: a healthy fraction of programs
        must produce recorded get/rpc values and non-trivial tables."""
        with_values = with_memory = 0
        for index in range(30):
            prog = generate_program(SWEEP_SEED * 1_000_003 + index)
            out = run_program(prog, "eager")
            if any(rank_values for rank_values in out.values):
                with_values += 1
            if any(any(row) for row in out.tables):
                with_memory += 1
        assert with_values >= 20
        assert with_memory >= 20


class TestCxModes:
    """The completion-kind swap dimension: future-tracked ops replayed
    as continuation- or counter-tracked must reproduce the future
    baseline's memory, values, and completion counts in every mode."""

    def test_cx_mode_names(self):
        assert CX_MODES == ("future", "continuation", "counter")

    def test_swap_plan_is_deterministic_and_nonvacuous(self):
        """The swap coin is a pure function of (program, rank, kind),
        and the corpus genuinely contains swappable ops."""
        swapped = 0
        for seed in range(20):
            prog = generate_program(SWEEP_SEED * 1_000_003 + seed)
            for me in range(prog.ranks):
                a = _swap_plan(prog, me, "continuation")
                b = _swap_plan(prog, me, "continuation")
                assert a == b
                assert _swap_plan(prog, me, "future") == {}
                swapped += sum(a.values())
                # the two kinds use different coins (independent plans)
        assert swapped > 0

    @pytest.mark.parametrize("cx", CX_MODES[1:])
    def test_swapped_runs_reproduce_future_baseline(self, cx):
        """40 programs x all modes: tables, values, and completion
        counts equal the future baseline exactly (clocks exempt — the
        swapped kinds charge different costs)."""
        failures = []
        for index in range(40):
            prog = generate_program(SWEEP_SEED * 1_000_003 + index)
            for mode in MODES:
                base = run_program(prog, mode)
                swapped = run_program(prog, mode, cx=cx)
                if (
                    swapped.tables != base.tables
                    or swapped.values != base.values
                    or swapped.completions != base.completions
                ):
                    failures.append((index, mode, cx))
        assert not failures, f"cx-swap mismatches: {failures[:5]}"

    @pytest.mark.parametrize("cx", CX_MODES[1:])
    def test_cx_replay_bit_identical(self, cx):
        rng = random.Random(11)
        for _ in range(4):
            prog = generate_program(rng.randrange(1 << 30))
            first = run_program(prog, "adaptive", cx=cx)
            second = run_program(prog, "adaptive", cx=cx)
            assert first == second
            assert first.clock_ns == second.clock_ns

    def test_check_program_covers_cx_modes(self):
        """check_program(cx_modes=...) folds the swap dimension into
        the standard sweep (the CI entry point's code path)."""
        for index in range(8):
            prog = generate_program(SWEEP_SEED * 1_000_003 + index)
            assert check_program(prog, cx_modes=CX_MODES[1:]) == []

    def test_cross_scheduler_exact_with_cx(self):
        """Both substrates agree bit-for-bit (clocks included) on
        swapped runs."""
        for index in range(6):
            prog = generate_program(SWEEP_SEED * 1_000_003 + index)
            for cx in CX_MODES[1:]:
                a = run_program(prog, "adaptive", "thread", cx=cx)
                b = run_program(prog, "adaptive", "event", cx=cx)
                assert a == b
                assert a.clock_ns == b.clock_ns


class TestReplay:
    @pytest.mark.parametrize("mode", MODES)
    def test_replay_bit_identical_per_mode(self, mode):
        """Same (program, flags) pair -> identical outcome, *including*
        per-rank virtual clocks."""
        rng = random.Random(7)
        for _ in range(5):
            prog = generate_program(rng.randrange(1 << 30))
            first = run_program(prog, mode)
            second = run_program(prog, mode)
            assert first == second
            assert first.clock_ns == second.clock_ns

    def test_modes_differ_in_timing_not_outcome(self):
        """Sanity check that the equivalence is not trivial: eager and
        defer clocks genuinely differ on a notification-heavy program
        while outcomes agree (if the clocks always matched, the sweep
        would not be exercising the paper's distinction at all)."""
        diffs = 0
        for seed in range(10):
            prog = generate_program(seed)
            eager = run_program(prog, "eager")
            defer = run_program(prog, "defer")
            assert eager.tables == defer.tables
            assert eager.values == defer.values
            if eager.clock_ns != defer.clock_ns:
                diffs += 1
        assert diffs > 0

    def test_failing_artifact_round_trip(self):
        """The CI artifact path: a program serialized on failure replays
        to the same outcomes after a JSON round trip."""
        prog = generate_program(12345)
        clone = program_from_json(program_to_json(prog))
        assert run_program(prog, "adaptive") == run_program(clone, "adaptive")
