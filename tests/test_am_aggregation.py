"""AM aggregation: flush policies, the completion-semantics gate, and
deferred-vs-eager equivalence with destination batching enabled.

The aggregation layer (``repro.gasnet.aggregator``) parks small off-node
AMs in per-destination buffers and ships them as bundles.  These tests pin
down:

* the four flush policies (entry threshold, byte threshold, explicit,
  progress/barrier/wait entry);
* eligibility (off-node only, ``aggregatable`` only, flag-gated);
* ordering within a destination;
* the correctness gate — completion-carrying replies are never bundled,
  so no completion can be observed before its operation's bundle was
  delivered, and deferred/eager builds reach identical final states.
"""

import numpy as np
import pytest

from repro import barrier, new_, new_array, operation_cx, rank_me, rput
from repro.apps.gups import GupsConfig, run_gups
from repro.atomics.domain import AtomicDomain
from repro.core.promise import Promise
from repro.errors import UpcxxError
from repro.memory.global_ptr import GlobalPtr
from repro.rpc import rpc_ff
from repro.runtime.config import RuntimeConfig, Version, flags_for
from repro.runtime.context import current_ctx
from repro.runtime.runtime import build_world, spmd_run
from repro.sim.costmodel import CostAction
from repro.sim.stats import aggregation_stats, pshm_cache_hits

VD, VE = Version.V2021_3_6_DEFER, Version.V2021_3_6_EAGER


def agg_flags(version=VE, max_entries=32, max_bytes=4096):
    return flags_for(version).replace(
        am_aggregation=True,
        agg_max_entries=max_entries,
        agg_max_bytes=max_bytes,
    )


def agg_world(ranks=4, n_nodes=2, conduit="ibv", **kw):
    """A multi-node world with aggregation on (ranks 0/1 node 0, 2/3 node 1)."""
    return build_world(
        RuntimeConfig(conduit=conduit, flags=agg_flags(**kw)),
        ranks=ranks,
        n_nodes=n_nodes,
    )


class TestEligibility:
    def test_flag_off_means_no_aggregator(self):
        w = build_world(RuntimeConfig(conduit="ibv"), ranks=4, n_nodes=2)
        assert all(c.am_agg is None for c in w.contexts)
        w.conduit.send_am(
            w.contexts[0], 2, lambda t: None, aggregatable=True
        )
        assert w.conduit.pending_for(2) == 1  # injected directly

    def test_flag_on_wires_aggregator(self):
        w = agg_world()
        assert all(c.am_agg is not None for c in w.contexts)

    def test_onnode_ams_never_buffered(self):
        w = agg_world()
        w.conduit.send_am(
            w.contexts[0], 1, lambda t: None, aggregatable=True
        )
        assert w.contexts[0].am_agg.pending_entries() == 0
        assert w.conduit.pending_for(1) == 1

    def test_non_aggregatable_offnode_ams_bypass(self):
        w = agg_world()
        w.conduit.send_am(w.contexts[0], 2, lambda t: None)
        assert w.contexts[0].am_agg.pending_entries() == 0
        assert w.conduit.pending_for(2) == 1

    def test_aggregatable_offnode_ams_buffered(self):
        w = agg_world()
        w.conduit.send_am(
            w.contexts[0], 2, lambda t: None, aggregatable=True
        )
        assert w.contexts[0].am_agg.pending_entries(2) == 1
        assert w.conduit.pending_for(2) == 0

    def test_invalid_rank_still_rejected(self):
        w = agg_world()
        with pytest.raises(UpcxxError):
            w.conduit.send_am(
                w.contexts[0], 99, lambda t: None, aggregatable=True
            )

    def test_bad_thresholds_rejected(self):
        with pytest.raises(UpcxxError):
            build_world(
                RuntimeConfig(conduit="ibv", flags=agg_flags(max_entries=0)),
                ranks=4,
                n_nodes=2,
            )


class TestFlushPolicies:
    def test_entry_threshold(self):
        w = agg_world(max_entries=4)
        ctx0 = w.contexts[0]
        got = []
        for i in range(3):
            w.conduit.send_am(
                ctx0, 2, lambda t, i=i: got.append(i), aggregatable=True
            )
        assert w.conduit.pending_for(2) == 0  # below threshold: parked
        w.conduit.send_am(
            ctx0, 2, lambda t: got.append(3), aggregatable=True
        )
        assert w.conduit.pending_for(2) == 1  # one bundle, four entries
        w.contexts[2].progress()
        assert got == [0, 1, 2, 3]  # append order preserved

    def test_byte_threshold(self):
        w = agg_world(max_entries=1000, max_bytes=64)
        ctx0 = w.contexts[0]
        w.conduit.send_am(
            ctx0, 2, lambda t: None, nbytes=32, aggregatable=True
        )
        assert w.conduit.pending_for(2) == 0
        w.conduit.send_am(
            ctx0, 2, lambda t: None, nbytes=32, aggregatable=True
        )
        assert w.conduit.pending_for(2) == 1  # 64 bytes tripped the flush

    def test_explicit_flush_and_flush_all(self):
        w = agg_world()
        ctx0 = w.contexts[0]
        for dst in (2, 3):
            w.conduit.send_am(
                ctx0, dst, lambda t: None, aggregatable=True
            )
        assert ctx0.am_agg.pending_entries() == 2
        assert ctx0.am_agg.flush(2) == 1
        assert w.conduit.pending_for(2) == 1
        assert ctx0.am_agg.pending_entries() == 1
        assert ctx0.am_agg.flush_all() == 1
        assert w.conduit.pending_for(3) == 1
        assert ctx0.am_agg.flush_all() == 0  # idempotent when empty

    def test_flush_on_progress_entry(self):
        w = agg_world()
        ctx0 = w.contexts[0]
        w.conduit.send_am(ctx0, 2, lambda t: None, aggregatable=True)
        ctx0.progress()
        assert ctx0.am_agg.pending_entries() == 0
        assert w.conduit.pending_for(2) == 1

    def test_flush_covers_wait_and_barrier(self):
        """An initiator spinning in wait() must publish its own buffered
        request — and a responder parked in barrier() must not strand the
        (unaggregated) ack: the put completes and both ranks terminate."""

        def body():
            g = new_("u64", 0)
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(2, g.offset, g.ts)
                rput(123, remote).wait()  # req bundled; wait() flushes it
            barrier()
            return g.local().read()

        res = spmd_run(
            body, ranks=4, n_nodes=2, conduit="ibv", flags=agg_flags()
        )
        assert res.values == [0, 0, 123, 0]


class TestCostModel:
    def test_injections_amortized(self):
        w = agg_world(max_entries=8)
        ctx0 = w.contexts[0]
        for _ in range(8):
            w.conduit.send_am(
                ctx0, 2, lambda t: None, nbytes=8, aggregatable=True
            )
        assert ctx0.costs.count(CostAction.AM_INJECT) == 1
        assert ctx0.costs.count(CostAction.AM_AGG_APPEND) == 8
        assert ctx0.costs.count(CostAction.AM_BUNDLE_HEADER) == 1
        ctx2 = w.contexts[2]
        ctx2.progress()
        assert ctx2.costs.count(CostAction.AM_EXECUTE) == 1
        assert ctx2.costs.count(CostAction.AM_BUNDLE_ENTRY_DISPATCH) == 8

    def test_aggregation_stats_helper(self):
        w = agg_world(max_entries=4)
        ctx0 = w.contexts[0]
        for _ in range(6):
            w.conduit.send_am(
                ctx0, 2, lambda t: None, aggregatable=True
            )
        ctx0.am_agg.flush_all()
        s = aggregation_stats(w)
        assert s.appended == 6
        assert s.bundles_flushed == 2
        assert s.entries_flushed == 6
        assert s.largest_bundle == 4
        assert s.mean_bundle_size == 3.0

    def test_pshm_cache_hit_counter(self):
        w = agg_world()
        before = pshm_cache_hits(w)
        w.conduit.pshm_reachable(0, 1)
        w.conduit.pshm_reachable(0, 2)
        assert pshm_cache_hits(w) == before + 2


class TestCompletionGate:
    """No completion is observable before its bundle was delivered, and
    completion-carrying replies are never themselves bundled."""

    @pytest.mark.parametrize("version", (VD, VE))
    def test_put_future_not_ready_until_bundle_delivered(self, version):
        def body():
            ctx = current_ctx()
            g = new_("u64", 7)
            barrier()
            out = {}
            if rank_me() == 0:
                remote = GlobalPtr(2, g.offset, g.ts)
                fut = rput(99, remote)
                # request parked in our buffer: no completion may fire and
                # the target's memory must be untouched
                assert ctx.am_agg.pending_entries(2) == 1
                assert not fut.is_ready()
                assert (
                    ctx.world.segment_of(2).read_scalar(g.offset, g.ts) == 7
                )
                fut.wait()  # flush + round trip
                out["ready"] = fut.is_ready()
            barrier()
            out["value"] = int(g.local().read())
            return out

        res = spmd_run(
            body,
            ranks=4,
            n_nodes=2,
            conduit="ibv",
            version=version,
            flags=agg_flags(version),
        )
        assert res.values[0]["ready"]
        assert [v["value"] for v in res.values] == [7, 7, 99, 7]

    @pytest.mark.parametrize("version", (VD, VE))
    def test_replies_never_bundled(self, version):
        """The amo ack must come back direct even though the request rode
        in a bundle: exactly one bundle total (the request's)."""

        def body():
            g = new_("u64", 5)
            barrier()
            old = None
            if rank_me() == 0:
                remote = GlobalPtr(2, g.offset, g.ts)
                ad = AtomicDomain({"fetch_add"})
                old = ad.fetch_add(remote, 3).wait()
            barrier()
            return old, int(g.local().read())

        res = spmd_run(
            body,
            ranks=4,
            n_nodes=2,
            conduit="ibv",
            version=version,
            flags=agg_flags(version),
        )
        assert res.values[0] == (5, 5)
        assert res.values[2] == (None, 8)
        world_bundles = sum(
            c.costs.count(CostAction.AM_BUNDLE_HEADER)
            for c in res.world.contexts
        )
        assert world_bundles == 1  # the amo_req bundle; the ack was direct

    def test_promise_tracked_offnode_batch(self):
        """A promise over many aggregated off-node amos fulfills exactly
        once per op (acks direct, requests bundled)."""

        def body():
            g = new_array("u64", 4)
            view = current_ctx().segment.view_array(g.offset, g.ts, 4)
            view[:] = 0
            barrier()
            if rank_me() == 0:
                ad = AtomicDomain({"add"})
                p = Promise()
                for i in range(4):
                    remote = GlobalPtr(2, g.offset, g.ts) + i
                    ad.add(remote, i + 1, operation_cx.as_promise(p))
                p.finalize().wait()
            barrier()
            return [int(x) for x in view]

        res = spmd_run(
            body, ranks=4, n_nodes=2, conduit="ibv", flags=agg_flags()
        )
        assert res.values[2] == [1, 2, 3, 4]


class TestSemanticsEquivalence:
    """Acceptance gate: deferred and eager builds observe identical final
    table states with aggregation on (and match the race-free oracle)."""

    def test_gups_agg_defer_eager_identical_tables(self):
        cfg = GupsConfig(
            variant="agg", table_log2=10, updates_per_rank=64, batch=16
        )
        tables = {}
        for version in (VD, VE):
            r = run_gups(
                cfg,
                ranks=4,
                n_nodes=2,
                version=version,
                machine="generic",
                conduit="ibv",
                flags=agg_flags(version, max_entries=16),
            )
            assert r.matches_oracle
            assert r.passes_hpcc_verification
            assert r.error_fraction == 0.0  # exact, not merely within 1%
            assert r.am_bundles > 0  # aggregation actually engaged
            tables[version] = r.table
        assert np.array_equal(tables[VD], tables[VE])

    def test_gups_agg_flag_off_matches_flag_on(self):
        """The batching is a pure schedule change: final state identical
        with aggregation on and off (updates commute)."""
        cfg = GupsConfig(
            variant="agg", table_log2=10, updates_per_rank=64, batch=16
        )
        runs = {}
        for on in (False, True):
            fl = flags_for(VE).replace(
                am_aggregation=on, agg_max_entries=16
            )
            runs[on] = run_gups(
                cfg,
                ranks=4,
                n_nodes=2,
                version=VE,
                machine="generic",
                conduit="ibv",
                flags=fl,
            )
            assert runs[on].matches_oracle
        assert np.array_equal(runs[False].table, runs[True].table)
        assert runs[True].am_injects < runs[False].am_injects
