"""Tests for the bench reporting layer."""

from repro.bench.harness import MicroResult
from repro.bench.report import (
    format_gups_figure,
    format_matching_figure,
    format_micro_figure,
    format_offnode_figure,
    format_table,
)
from repro.runtime.config import Version

V0 = Version.V2021_3_0
VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(
            "Title", ["name", "value"], [["a", "1"], ["bbbb", "22"]]
        )
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert set(lines[1]) == {"="}
        assert "name" in lines[2]
        assert set(lines[3]) == {"-"}
        # columns align: all rows same width
        assert len(lines[4]) == len(lines[5])

    def test_wide_cells_grow_columns(self):
        out = format_table("T", ["c"], [["a-very-wide-cell"]])
        assert "a-very-wide-cell" in out


def _micro(op, version, ns):
    return MicroResult(
        op=op, version=version, machine="intel", ns_per_op=ns, n_ops=1
    )


class TestMicroFigure:
    def test_speedup_column(self):
        grid = {
            ("put", V0): _micro("put", V0, 200.0),
            ("put", VD): _micro("put", VD, 150.0),
            ("put", VE): _micro("put", VE, 100.0),
        }
        out = format_micro_figure("F", grid, ops=("put",))
        assert "+50%" in out
        assert "200.0" in out

    def test_missing_cells_render_dashes(self):
        grid = {
            ("fadd_nv", V0): None,
            ("fadd_nv", VD): _micro("fadd_nv", VD, 10.0),
            ("fadd_nv", VE): _micro("fadd_nv", VE, 5.0),
        }
        out = format_micro_figure("F", grid, ops=("fadd_nv",))
        assert "--" in out
        assert "+100%" in out


class TestGupsFigure:
    def test_ratio_column(self):
        class R:
            def __init__(self, gups):
                self.gups = gups

        grid = {}
        for variant in ("raw", "manual", "rma_promise", "rma_future",
                        "amo_promise", "amo_future"):
            grid[(variant, V0)] = R(0.01)
            grid[(variant, VD)] = R(0.01)
            grid[(variant, VE)] = R(0.02)
        out = format_gups_figure("G", grid)
        assert "2.00x" in out
        assert "rma_future" in out


class TestMatchingFigure:
    def test_locality_column(self):
        class R:
            def __init__(self, ns):
                self.solve_ns = ns

        grid = {}
        for name in ("channel", "venturi", "random", "delaunay", "youtube"):
            grid[(name, V0)] = R(2.2e6)
            grid[(name, VD)] = R(2.0e6)
            grid[(name, VE)] = R(1.0e6)
        loc = {
            name: {"cross_rank": 0.5}
            for name in ("channel", "venturi", "random", "delaunay",
                         "youtube")
        }
        out = format_matching_figure("M", grid, loc)
        assert "50%" in out
        assert "+100%" in out
        assert "2.200" in out  # ms rendering


class TestOffnodeFigure:
    def test_delta_column(self):
        grid = {
            ("put", VD): 1000.0,
            ("put", VE): 1001.0,
        }
        out = format_offnode_figure("O", grid)
        assert "+0.10%" in out


class TestCsvExport:
    def test_micro_csv(self):
        from repro.bench.report import export_micro_csv

        grid = {
            ("put", V0): _micro("put", V0, 200.0),
            ("put", VE): _micro("put", VE, 100.0),
            ("fadd_nv", V0): None,
        }
        csv = export_micro_csv(grid)
        lines = csv.strip().splitlines()
        assert lines[0] == "op,version,ns_per_op"
        assert "put,2021.3.0,200.000" in lines
        assert len(lines) == 3  # header + 2 cells (None omitted)

    def test_gups_csv(self):
        from repro.bench.report import export_gups_csv

        class R:
            gups = 0.001
            solve_ns = 123.0

        csv = export_gups_csv({("raw", VE): R()})
        assert "raw,2021.3.6-eager,0.001000000,123.0" in csv

    def test_matching_csv(self):
        from repro.bench.report import export_matching_csv

        class R:
            solve_ns = 5.0

        csv = export_matching_csv(
            {("youtube", VD): R()},
            {"youtube": {"cross_rank": 0.9}},
        )
        assert "youtube,2021.3.6-defer,5.0,0.9000" in csv


class TestBars:
    def test_bars_scale_to_peak(self):
        from repro.bench.report import format_bars

        out = format_bars("B", [("a", 100.0), ("b", 50.0)], unit="ns")
        lines = out.splitlines()
        bar_a = lines[2].count("#")
        bar_b = lines[3].count("#")
        assert bar_a == 2 * bar_b

    def test_bars_missing_value(self):
        from repro.bench.report import format_bars

        out = format_bars("B", [("a", 10.0), ("gone", None)])
        assert "gone" in out and "--" in out

    def test_bars_zero_value(self):
        from repro.bench.report import format_bars

        out = format_bars("B", [("z", 0.0), ("a", 5.0)])
        assert "0.0" in out

    def test_micro_bars(self):
        from repro.bench.report import format_micro_bars

        grid = {
            ("put", V0): _micro("put", V0, 200.0),
            ("put", VD): _micro("put", VD, 150.0),
            ("put", VE): _micro("put", VE, 100.0),
        }
        out = format_micro_bars("Figure 2", grid, "put")
        assert "2021.3.0" in out
        assert out.count("#") > 0
