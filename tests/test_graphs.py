"""Tests for the synthetic graph suite."""

import pytest

from repro.apps.graphs import (
    GRAPH_NAMES,
    edge_weight,
    locality_fractions,
    make_graph,
    owner_of,
)


class TestEdgeWeight:
    def test_symmetric(self):
        assert edge_weight(3, 7) == edge_weight(7, 3)

    def test_positive_bounded(self):
        for u in range(20):
            for v in range(u + 1, 20):
                w = edge_weight(u, v)
                assert 0 < w <= 1

    def test_distinct_in_practice(self):
        ws = {edge_weight(u, v) for u in range(40) for v in range(u + 1, 40)}
        assert len(ws) == 40 * 39 // 2

    def test_deterministic(self):
        assert edge_weight(5, 9) == edge_weight(5, 9)


class TestOwner:
    def test_block_partition(self):
        assert owner_of(0, 100, 4) == 0
        assert owner_of(99, 100, 4) == 3

    def test_uneven_sizes(self):
        # n=10, 4 ranks → per=3: owners 0,0,0,1,1,1,2,2,2,3
        owners = [owner_of(v, 10, 4) for v in range(10)]
        assert owners == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_last_rank_clamped(self):
        # per = ceil(16/5) = 4 → rank 4 owns no vertices; owner never
        # exceeds ranks-1 even for the last vertex
        assert owner_of(15, 16, 5) == 3
        assert owner_of(9, 10, 3) == 2


@pytest.mark.parametrize("name", GRAPH_NAMES)
class TestGenerators:
    def test_valid_structure(self, name):
        g = make_graph(name, scale=1, seed=0)
        g.validate()
        assert g.n > 0 and g.n_edges > 0

    def test_deterministic(self, name):
        a = make_graph(name, scale=1, seed=3)
        b = make_graph(name, scale=1, seed=3)
        assert a.adj == b.adj

    def test_seed_sensitivity(self, name):
        a = make_graph(name, scale=1, seed=0)
        b = make_graph(name, scale=1, seed=99)
        if name in ("channel", "venturi"):
            # meshes are seed-independent structures
            assert a.adj == b.adj
        else:
            assert a.adj != b.adj

    def test_scale_grows(self, name):
        small = make_graph(name, scale=1, seed=0)
        big = make_graph(name, scale=2, seed=0)
        assert big.n > small.n

    def test_edges_iterated_once(self, name):
        g = make_graph(name, scale=1, seed=0)
        edges = list(g.edges())
        assert len(edges) == g.n_edges
        assert all(u < v for u, v, _ in edges)


class TestLocalitySpectrum:
    def test_paper_ordering_at_16_ranks(self):
        """The Figure 8 explanation: channel is most local, youtube least;
        the full ordering drives the speedup gradient."""
        fr = {
            name: locality_fractions(make_graph(name, scale=4), 16)[
                "cross_rank"
            ]
            for name in GRAPH_NAMES
        }
        assert fr["channel"] < fr["venturi"] < fr["random"]
        assert fr["random"] < fr["delaunay"] < fr["youtube"]
        assert fr["channel"] < 0.10
        assert fr["youtube"] > 0.75

    def test_fractions_sum_to_one(self):
        g = make_graph("random", scale=1)
        fr = locality_fractions(g, 8)
        assert fr["same_rank"] + fr["cross_rank"] == pytest.approx(1.0)
        assert fr["edges"] == g.n_edges

    def test_single_rank_all_local(self):
        g = make_graph("youtube", scale=1)
        assert locality_fractions(g, 1)["cross_rank"] == 0.0


class TestErrors:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_graph("petersen")

    def test_degree_accessor(self):
        g = make_graph("channel", scale=1)
        assert g.degree(0) == len(g.adj[0])
