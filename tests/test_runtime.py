"""Integration tests for worlds, barriers, teams, and configuration."""

import pytest

from repro import barrier, local_team, rank_me, world_team
from repro.errors import UpcxxError
from repro.runtime.config import (
    FeatureFlags,
    RuntimeConfig,
    Version,
    flags_for,
)
from repro.runtime.context import current_ctx
from repro.runtime.runtime import World, build_world, spmd_run


class TestConfig:
    def test_version_flag_table(self):
        f30 = flags_for(Version.V2021_3_0)
        fd = flags_for(Version.V2021_3_6_DEFER)
        fe = flags_for(Version.V2021_3_6_EAGER)
        assert not f30.eager_notification
        assert not fd.eager_notification
        assert fe.eager_notification
        # the snapshot optimizations are shared by defer and eager builds
        for flag in (
            "elide_local_rma_alloc",
            "constexpr_is_local_smp",
            "ready_future_shared_cell",
            "when_all_shortcuts",
            "nonvalue_fetching_atomics",
            "eager_factories_available",
        ):
            assert not getattr(f30, flag)
            assert getattr(fd, flag)
            assert getattr(fe, flag)

    def test_flags_replace(self):
        f = flags_for(Version.V2021_3_6_EAGER).replace(
            when_all_shortcuts=False
        )
        assert not f.when_all_shortcuts
        assert f.eager_notification

    def test_config_resolves_flags(self):
        cfg = RuntimeConfig(version=Version.V2021_3_0)
        assert cfg.resolved_flags() == flags_for(Version.V2021_3_0)

    def test_config_explicit_flags_win(self):
        custom = flags_for(Version.V2021_3_0).replace(
            eager_notification=True
        )
        cfg = RuntimeConfig(version=Version.V2021_3_0, flags=custom)
        assert cfg.resolved_flags().eager_notification

    def test_describe(self):
        assert "2021.3.0" in RuntimeConfig(
            version=Version.V2021_3_0
        ).describe()


class TestWorldTopology:
    def test_single_node_default(self):
        w = build_world(RuntimeConfig(), ranks=4)
        assert w.n_nodes == 1
        assert all(w.same_node(0, r) for r in range(4))

    def test_two_nodes(self):
        w = build_world(
            RuntimeConfig(conduit="udp"), ranks=4, n_nodes=2
        )
        assert w.node_of(0) == w.node_of(1) == 0
        assert w.node_of(2) == w.node_of(3) == 1
        assert not w.same_node(1, 2)

    def test_uneven_nodes_rejected(self):
        with pytest.raises(UpcxxError):
            build_world(RuntimeConfig(conduit="udp"), ranks=3, n_nodes=2)

    def test_smp_multi_node_rejected(self):
        with pytest.raises(UpcxxError):
            build_world(RuntimeConfig(conduit="smp"), ranks=4, n_nodes=2)

    def test_rank_bounds(self):
        w = build_world(RuntimeConfig(), ranks=2)
        with pytest.raises(UpcxxError):
            w.node_of(2)

    def test_zero_ranks_rejected(self):
        with pytest.raises(UpcxxError):
            build_world(RuntimeConfig(), ranks=0)


class TestBarrier:
    def test_barrier_synchronizes_clocks(self):
        def body():
            ctx = current_ctx()
            if rank_me() == 0:
                ctx.clock.advance(100_000)
            barrier()
            return ctx.clock.now_ns

        res = spmd_run(body, ranks=4)
        assert all(v >= 100_000 for v in res.values)

    def test_barrier_orders_writes(self):
        """Data written before a barrier is visible to all after it."""

        def body():
            from repro import new_, rget, rput
            from repro.memory.global_ptr import GlobalPtr

            g = new_("u64", 0)
            barrier()
            if rank_me() == 0:
                rput(99, GlobalPtr(1, g.offset, g.ts)).wait()
            barrier()
            if rank_me() == 1:
                return rget(g).wait()
            return None

        res = spmd_run(body, ranks=2)
        assert res.values[1] == 99

    def test_many_barriers(self):
        def body():
            for _ in range(10):
                barrier()
            return rank_me()

        assert spmd_run(body, ranks=3).values == [0, 1, 2]

    def test_single_rank_barrier_trivial(self):
        def body():
            barrier()
            return "ok"

        assert spmd_run(body, ranks=1).values == ["ok"]


class TestTeams:
    def test_world_team_spans_all(self):
        def body():
            t = world_team()
            return (t.rank_n(), t.rank_me(current_ctx()))

        res = spmd_run(body, ranks=3)
        assert res.values == [(3, 0), (3, 1), (3, 2)]

    def test_local_team_single_node(self):
        def body():
            return local_team().rank_n()

        assert spmd_run(body, ranks=4).values == [4] * 4

    def test_local_team_two_nodes(self):
        def body():
            t = local_team()
            return (t.rank_n(), t.world_ranks())

        res = spmd_run(body, ranks=4, n_nodes=2, conduit="udp")
        assert res.values[0] == (2, (0, 1))
        assert res.values[3] == (2, (2, 3))


class TestMeasurement:
    def test_max_clock(self):
        def body():
            ctx = current_ctx()
            ctx.clock.advance(10.0 * (rank_me() + 1))
            return None

        res = spmd_run(body, ranks=3)
        assert res.max_clock_ns() >= 30.0
        assert res.clock_ns(0) < res.clock_ns(2)

    def test_total_count_aggregates(self):
        from repro.sim.costmodel import CostAction

        def body():
            current_ctx().charge(CostAction.CPU_LOAD)
            return None

        res = spmd_run(body, ranks=4)
        assert res.world.total_count(CostAction.CPU_LOAD) == 4
