"""Wait-aware completion targeting (``FeatureFlags.wait_hints``).

Functional coverage of the hinted-wait plumbing end to end:

* the wait-target stack on :class:`~repro.runtime.context.RankContext`
  and the :class:`~repro.runtime.wait_hints.WaitTarget` semantics;
* targeted drains from real ``Future.wait()`` / promise waits (the
  engine-level removal invariants live in ``test_prop_progress.py``);
* the aggregator's targeted flush composition — awaited destination,
  near-full ride-alongs, aged buffers — and its stats plumbing;
* observability: ``t_hinted`` stamps, wait counters, stall histogram,
  report rows;
* flag gating: validation, and bit-identity with the flag off;
* the two ``Future`` regressions riding along in this change: the
  ready+eager ``then()`` fast path must not charge a callback-schedule,
  and a second ``wait()`` on a ready future must re-charge nothing but
  the ready check.
"""

import numpy as np
import pytest

from repro import (
    AtomicDomain,
    barrier,
    current_ctx,
    make_future,
    new_array,
    operation_cx,
    rank_me,
    rank_n,
)
from repro.core.cell import alloc_cell
from repro.core.future import Future
from repro.core.promise import Promise
from repro.bench.report import (
    format_aggregation_report,
    format_progress_report,
)
from repro.errors import UpcxxError
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import flags_for
from repro.runtime.runtime import spmd_run
from repro.runtime.wait_hints import WaitTarget
from repro.sim.costmodel import CostAction
from repro.sim.stats import (
    aggregation_stats,
    observability_snapshots,
    observability_stats,
    progress_snapshots,
    progress_stats,
)
from tests.conftest import (
    VD,
    VE,
    adaptive_flags,
    adaptive_world,
    progress_adaptive_flags,
    send_agg_am,
)


def hinted_flags(**kw):
    return progress_adaptive_flags(wait_hints=True, **kw)


# ---------------------------------------------------------------------------
# WaitTarget and the context stack
# ---------------------------------------------------------------------------


class TestWaitTarget:
    def test_targeted_property(self):
        assert not WaitTarget().targeted
        assert not WaitTarget(op="barrier").targeted
        assert WaitTarget(cell=object()).targeted
        assert WaitTarget(dst_rank=3).targeted

    def test_context_stack_nests(self, versioned_ctx):
        ctx = versioned_ctx(VD, flags=hinted_flags())
        assert ctx.active_wait_target is None
        outer = WaitTarget(cell=object())
        inner = WaitTarget(cell=object())
        ctx.push_wait_target(outer)
        assert ctx.active_wait_target is outer
        ctx.push_wait_target(inner)
        assert ctx.active_wait_target is inner
        ctx.pop_wait_target()
        assert ctx.active_wait_target is outer
        ctx.pop_wait_target()
        assert ctx.active_wait_target is None

    def test_flag_mirrored_on_context(self, versioned_ctx):
        assert versioned_ctx(VD, flags=hinted_flags()).wait_hints
        assert not versioned_ctx(VD).wait_hints


class TestFlagValidation:
    @pytest.mark.parametrize("bad", (0.0, -0.5, 1.5))
    def test_fill_frac_range_enforced(self, bad):
        with pytest.raises(UpcxxError):
            flags_for(VD).replace(wait_flush_fill_frac=bad)

    def test_defaults_off(self):
        flags = flags_for(VD)
        assert not flags.wait_hints
        assert 0.0 < flags.wait_flush_fill_frac <= 1.0


# ---------------------------------------------------------------------------
# hinted waits in a real world
# ---------------------------------------------------------------------------


def _hinted_body(probes=12):
    """Future-tracked atomics waited in reverse issue order, then one
    promise-tracked batch — both targeting shapes in one body."""
    ctx = current_ctx()
    me, p = rank_me(), rank_n()
    per = 64
    mine = new_array("u64", per)
    view = ctx.segment.view_array(mine.offset, mine.ts, per)
    view[:] = 0
    bases = [GlobalPtr(r, mine.offset, mine.ts) for r in range(p)]
    ad = AtomicDomain({"bit_xor"}, "u64")
    barrier()
    futs = [
        ad.bit_xor(bases[(me + i) % p] + (i % per), i + 1)
        for i in range(probes)
    ]
    for f in reversed(futs):
        f.wait()
    prom = Promise()
    for i in range(probes):
        ad.bit_xor(
            bases[(me + i) % p] + (i % per), i + 1,
            operation_cx.as_promise(prom),
        )
    prom.finalize().wait()
    barrier()
    return int(np.bitwise_xor.reduce(view))


def _run_hinted(flags, ranks=4):
    return spmd_run(
        _hinted_body, ranks=ranks, version=VD, machine="generic", flags=flags
    )


class TestHintedWaits:
    def test_targeted_drains_fire_and_results_hold(self):
        res = _run_hinted(hinted_flags(obs_spans=True))
        w = res.world
        # promise-batch updates cancel the future-tracked ones exactly
        assert all(v == 0 for v in res.values)
        assert w.total_count(CostAction.PROGRESS_HINT_SCAN) > 0
        stats = progress_stats(w)
        assert stats.hinted_scans > 0
        assert stats.hinted_dispatched > 0

    def test_promise_wait_targets_the_whole_batch(self):
        """Every fulfilment thunk of a promise batch shares the promise's
        cell, so one targeted drain retires the batch *past* the cap."""
        res = _run_hinted(hinted_flags(progress_max_batch=4), ranks=4)
        cap = 4
        snaps = progress_snapshots(res.world)
        assert any(s.hinted_dispatched > cap for s in snaps)

    def test_obs_spans_and_counters(self):
        res = _run_hinted(hinted_flags(obs_spans=True))
        snaps = observability_snapshots(res.world)
        hinted_spans = [
            s for snap in snaps for s in snap.spans if s.t_hinted is not None
        ]
        assert hinted_spans
        for span in hinted_spans:
            assert span.t_hinted >= span.t_init
        obs = observability_stats(res.world)
        assert obs.metrics.counters["wait.hints"] > 0
        assert obs.metrics.histograms["wait.stall_ns"].n > 0

    def test_waited_gap_rollup_populated(self):
        res = _run_hinted(hinted_flags(obs_spans=True))
        obs = observability_stats(res.world)
        key = ("defer", "pshm")
        assert key in obs.waited_gaps
        assert obs.waited_gaps[key].count > 0

    def test_report_rows_render(self):
        res = _run_hinted(hinted_flags(obs_spans=True))
        prog = format_progress_report("p", progress_stats(res.world))
        assert "hinted scans" in prog
        assert "hinted dispatches" in prog
        agg = format_aggregation_report("a", aggregation_stats(res.world))
        assert "wait-hint flushes" in agg

    def test_flag_off_bit_identical(self):
        """With ``wait_hints`` off, the wait knob is dead: clocks and
        counters are unchanged whatever it holds."""
        a = _run_hinted(progress_adaptive_flags())
        b = _run_hinted(
            progress_adaptive_flags(wait_flush_fill_frac=0.9)
        )
        assert [c.clock.now_ns for c in a.world.contexts] == [
            c.clock.now_ns for c in b.world.contexts
        ]
        assert a.world.total_count(CostAction.PROGRESS_POLL) == \
            b.world.total_count(CostAction.PROGRESS_POLL)
        assert a.world.total_count(CostAction.PROGRESS_HINT_SCAN) == 0
        assert b.world.total_count(CostAction.PROGRESS_HINT_SCAN) == 0

    def test_hinted_vs_adaptive_same_results(self):
        """The hint reorders dispatch, never outcomes."""
        a = _run_hinted(progress_adaptive_flags())
        b = _run_hinted(hinted_flags())
        assert a.values == b.values


# ---------------------------------------------------------------------------
# the aggregator's targeted flush composition
# ---------------------------------------------------------------------------


def _wait_world(**kw):
    """6 ranks / 2 nodes: rank 0 has off-node destinations 3, 4, 5."""
    defaults = dict(
        ranks=6,
        wait_hints=True,
        wait_flush_fill_frac=0.5,
        agg_adaptive=False,
    )
    defaults.update(kw)
    return adaptive_world(**defaults)


class TestFlushForWait:
    def test_awaited_destination_flushes_immediately(self):
        w = _wait_world()
        agg = w.contexts[0].am_agg
        send_agg_am(w, 0, 3)
        send_agg_am(w, 0, 3)
        assert agg.pending_entries(3) == 2
        shipped = agg.flush_for_wait(3)
        assert shipped == 2
        assert agg.pending_entries(3) == 0
        assert agg.flush_reasons["wait_hint"] == 1
        assert agg.wait_flushes == 1

    def test_near_full_rides_along_sparse_stays(self):
        """static thresholds (8 entries): fill_frac 0.5 -> a 5-entry
        buffer rides the targeted flush, a 1-entry buffer keeps batching."""
        w = _wait_world()
        agg = w.contexts[0].am_agg
        send_agg_am(w, 0, 3)  # the awaited destination
        for _ in range(5):
            send_agg_am(w, 0, 4)  # near full: 5/8 >= 0.5
        send_agg_am(w, 0, 5)  # sparse: 1/8 < 0.5
        agg.flush_for_wait(3)
        assert agg.pending_entries(3) == 0
        assert agg.pending_entries(4) == 0
        assert agg.pending_entries(5) == 1
        assert agg.flush_reasons["wait_hint"] == 1
        assert agg.flush_reasons["near_full"] == 1

    def test_wait_flush_without_destination_hint(self):
        """A local-op wait carries no destination: only ride-alongs and
        aged buffers ship."""
        w = _wait_world()
        agg = w.contexts[0].am_agg
        for _ in range(5):
            send_agg_am(w, 0, 4)
        send_agg_am(w, 0, 5)
        agg.flush_for_wait(None)
        assert agg.pending_entries(4) == 0
        assert agg.pending_entries(5) == 1
        assert "wait_hint" not in agg.flush_reasons

    def test_aged_flush_carries_near_full_ride_along(self):
        """The cross-destination follow-on: an age flush wakes the
        conduit, so near-full buffers ship in the same activity."""
        w = _wait_world(agg_adaptive=True)  # age bound on (1000 ticks)
        ctx0 = w.contexts[0]
        agg = ctx0.am_agg
        send_agg_am(w, 0, 3)  # will age out
        ctx0.clock.advance(600.0)
        for _ in range(5):
            send_agg_am(w, 0, 4)  # young but past the fill fraction
        ctx0.clock.advance(500.0)  # dst 3 aged (1100), dst 4 young (500)
        shipped = agg.flush_aged()
        assert shipped >= 6
        assert agg.pending_entries(3) == 0
        assert agg.pending_entries(4) == 0
        assert agg.flush_reasons["age"] == 1
        assert agg.flush_reasons["near_full"] >= 1

    def test_snapshot_carries_wait_flushes(self):
        w = _wait_world()
        agg = w.contexts[0].am_agg
        send_agg_am(w, 0, 3)
        agg.flush_for_wait(3)
        assert agg.stats().wait_flushes == 1
        assert aggregation_stats(w).wait_flushes == 1


# ---------------------------------------------------------------------------
# the Future regressions riding along
# ---------------------------------------------------------------------------


class TestThenFastPath:
    def test_ready_eager_then_charges_no_schedule(self, versioned_ctx):
        ctx = versioned_ctx(VE)
        fut = make_future(5)
        ran = []
        before = ctx.costs.count(CostAction.FUTURE_CALLBACK_SCHEDULE)
        out = fut.then(lambda v: ran.append(v))
        assert ran == [5]
        assert out.is_ready()
        assert ctx.costs.count(CostAction.FUTURE_CALLBACK_SCHEDULE) == before

    def test_ready_defer_then_keeps_legacy_charge(self, versioned_ctx):
        """Deferred builds model the release's unconditional scheduling
        bookkeeping even for ready sources — unchanged by the fast path."""
        ctx = versioned_ctx(VD)
        fut = make_future(5)
        before = ctx.costs.count(CostAction.FUTURE_CALLBACK_SCHEDULE)
        fut.then(lambda v: v)
        assert (
            ctx.costs.count(CostAction.FUTURE_CALLBACK_SCHEDULE) == before + 1
        )

    def test_pending_eager_then_still_charges(self, versioned_ctx):
        ctx = versioned_ctx(VE)
        cell = alloc_cell(ctx, nvalues=1, deps=1)
        fut = Future(cell)
        before = ctx.costs.count(CostAction.FUTURE_CALLBACK_SCHEDULE)
        fut.then(lambda v: v)
        assert (
            ctx.costs.count(CostAction.FUTURE_CALLBACK_SCHEDULE) == before + 1
        )


class TestDoubleWait:
    @pytest.mark.parametrize("hints", (False, True))
    def test_second_wait_charges_only_the_ready_check(
        self, versioned_ctx, hints
    ):
        ctx = versioned_ctx(
            VD, flags=hinted_flags() if hints else progress_adaptive_flags()
        )
        fut = make_future(7)
        assert fut.wait() == 7
        snap = ctx.costs.snapshot()
        assert fut.wait() == 7
        delta = ctx.costs.snapshot() - snap
        assert delta == {CostAction.FUTURE_READY_CHECK: 1}

    def test_second_wait_never_reenters_the_hinted_spin(self, versioned_ctx):
        ctx = versioned_ctx(VD, flags=hinted_flags())
        fut = make_future()
        fut.wait()
        before = ctx.costs.count(CostAction.PROGRESS_HINT_SCAN)
        fut.wait()
        assert ctx.costs.count(CostAction.PROGRESS_HINT_SCAN) == before
        assert ctx.costs.count(CostAction.PROGRESS_HINT_SCAN) == 0
