"""Unit tests for shared segments and the type registry."""

import numpy as np
import pytest

from repro.errors import SegmentError
from repro.memory.segment import Segment, type_spec


@pytest.fixture
def seg():
    return Segment(owner_rank=0, size_bytes=1024)


class TestTypeSpec:
    @pytest.mark.parametrize(
        "name,size",
        [("i64", 8), ("u64", 8), ("f64", 8), ("i32", 4), ("u32", 4), ("u8", 1)],
    )
    def test_sizes(self, name, size):
        assert type_spec(name).size == size

    def test_passthrough(self):
        ts = type_spec("u64")
        assert type_spec(ts) is ts

    def test_unknown(self):
        with pytest.raises(KeyError):
            type_spec("u128")


class TestConstruction:
    def test_zero_initialized(self, seg):
        assert seg.read_scalar(0, type_spec("u64")) == 0

    def test_size_must_be_multiple_of_8(self):
        with pytest.raises(ValueError):
            Segment(0, 1001)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Segment(0, 0)


class TestScalar:
    def test_roundtrip_i64(self, seg):
        ts = type_spec("i64")
        seg.write_scalar(16, ts, -42)
        assert seg.read_scalar(16, ts) == -42

    def test_roundtrip_f64(self, seg):
        ts = type_spec("f64")
        seg.write_scalar(8, ts, 3.25)
        assert seg.read_scalar(8, ts) == 3.25

    def test_u64_full_range(self, seg):
        ts = type_spec("u64")
        big = (1 << 64) - 1
        seg.write_scalar(0, ts, big)
        assert seg.read_scalar(0, ts) == big

    def test_returns_python_scalar(self, seg):
        ts = type_spec("u64")
        seg.write_scalar(0, ts, 5)
        v = seg.read_scalar(0, ts)
        assert type(v) is int

    def test_out_of_bounds(self, seg):
        with pytest.raises(SegmentError):
            seg.read_scalar(1024, type_spec("u64"))

    def test_negative_offset(self, seg):
        with pytest.raises(SegmentError):
            seg.read_scalar(-8, type_spec("u64"))

    def test_misaligned(self, seg):
        with pytest.raises(SegmentError):
            seg.write_scalar(4, type_spec("u64"), 1)

    def test_i32_alignment_is_4(self, seg):
        ts = type_spec("i32")
        seg.write_scalar(4, ts, 7)
        assert seg.read_scalar(4, ts) == 7


class TestArray:
    def test_roundtrip(self, seg):
        ts = type_spec("u64")
        seg.write_array(0, ts, [1, 2, 3])
        assert list(seg.read_array(0, ts, 3)) == [1, 2, 3]

    def test_read_is_a_copy(self, seg):
        ts = type_spec("u64")
        seg.write_array(0, ts, [1, 2])
        out = seg.read_array(0, ts, 2)
        out[0] = 99
        assert seg.read_scalar(0, ts) == 1

    def test_view_aliases_memory(self, seg):
        ts = type_spec("u64")
        view = seg.view_array(0, ts, 4)
        view[2] = 17
        assert seg.read_scalar(16, ts) == 17

    def test_overflowing_write(self, seg):
        ts = type_spec("u64")
        with pytest.raises(SegmentError):
            seg.write_array(1016, ts, [1, 2])

    def test_negative_count(self, seg):
        with pytest.raises(ValueError):
            seg.read_array(0, type_spec("u64"), -1)

    def test_2d_rejected(self, seg):
        with pytest.raises(ValueError):
            seg.write_array(0, type_spec("u64"), np.zeros((2, 2)))


class TestBytes:
    def test_roundtrip(self, seg):
        seg.write_bytes(3, b"hello")
        assert seg.read_bytes(3, 5) == b"hello"

    def test_unaligned_bytes_ok(self, seg):
        seg.write_bytes(1, b"\x01")
        assert seg.read_bytes(1, 1) == b"\x01"

    def test_bounds(self, seg):
        with pytest.raises(SegmentError):
            seg.write_bytes(1020, b"xxxxx")

    def test_typed_and_byte_views_agree(self, seg):
        ts = type_spec("u64")
        seg.write_scalar(0, ts, 0x0102030405060708)
        raw = seg.read_bytes(0, 8)
        assert int.from_bytes(raw, "little") == 0x0102030405060708
