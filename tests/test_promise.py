"""Unit tests for promises: counter semantics, finalize, fulfillment."""

import pytest

from repro.core.promise import Promise
from repro.errors import PromiseError
from repro.sim.costmodel import CostAction


class TestLifecycle:
    def test_finalize_with_no_ops_is_ready(self, ctx):
        p = Promise()
        f = p.finalize()
        assert f.is_ready()

    def test_future_not_ready_before_finalize(self, ctx):
        p = Promise()
        assert not p.get_future().is_ready()

    def test_counter_tracks_many_ops(self, ctx):
        p = Promise()
        p.require_anonymous(3)
        f = p.finalize()
        assert not f.is_ready()
        p.fulfill_anonymous()
        p.fulfill_anonymous()
        assert not f.is_ready()
        p.fulfill_anonymous()
        assert f.is_ready()

    def test_fulfill_before_finalize(self, ctx):
        p = Promise()
        p.require_anonymous(1)
        p.fulfill_anonymous()
        assert not p.get_future().is_ready()  # master dep outstanding
        assert p.finalize().is_ready()

    def test_finalize_idempotent(self, ctx):
        p = Promise()
        f1 = p.finalize()
        f2 = p.finalize()
        assert f1.is_ready() and f2.is_ready()

    def test_bulk_fulfill(self, ctx):
        p = Promise()
        p.require_anonymous(5)
        p.fulfill_anonymous(5)
        assert p.finalize().is_ready()


class TestErrors:
    def test_require_after_finalize(self, ctx):
        p = Promise()
        p.finalize()
        with pytest.raises(PromiseError):
            p.require_anonymous(1)

    def test_negative_require(self, ctx):
        with pytest.raises(PromiseError):
            Promise().require_anonymous(-1)

    def test_over_fulfill(self, ctx):
        p = Promise()
        p.require_anonymous(1)
        p.fulfill_anonymous()
        with pytest.raises(PromiseError):
            p.fulfill_anonymous()

    def test_over_fulfill_cannot_steal_master_dep(self, ctx):
        p = Promise()
        with pytest.raises(PromiseError):
            p.fulfill_anonymous()


class TestValues:
    def test_value_promise(self, ctx):
        p = Promise(nvalues=1)
        p.require_anonymous(1)
        p.fulfill_result(42)
        assert p.finalize().result() == 42

    def test_value_arity_checked(self, ctx):
        p = Promise(nvalues=2)
        p.require_anonymous(1)
        with pytest.raises(PromiseError):
            p.fulfill_result(1)

    def test_valueless_fulfill_result(self, ctx):
        p = Promise()
        p.require_anonymous(1)
        p.fulfill_result()
        assert p.finalize().is_ready()


class TestCosts:
    def test_promise_is_single_allocation(self, ctx):
        """The §II-A efficiency claim: a promise tracking N operations
        costs one heap allocation, not N."""
        before = ctx.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        p = Promise()
        p.require_anonymous(100)
        p.fulfill_anonymous(100)
        p.finalize().wait()
        assert (
            ctx.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before + 1
        )

    def test_register_and_fulfill_charge(self, ctx):
        p = Promise()
        r0 = ctx.costs.count(CostAction.PROMISE_REGISTER)
        f0 = ctx.costs.count(CostAction.PROMISE_FULFILL)
        p.require_anonymous(1)
        p.fulfill_anonymous()
        assert ctx.costs.count(CostAction.PROMISE_REGISTER) == r0 + 1
        assert ctx.costs.count(CostAction.PROMISE_FULFILL) == f0 + 1
