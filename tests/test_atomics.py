"""Tests for atomic domains, including the new non-value fetching variants."""

import pytest

from repro import AtomicDomain, Promise, new_, operation_cx, rank_me
from repro.errors import AtomicDomainError, InvalidGlobalPointer
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.sim.costmodel import CostAction
from tests.conftest import ALL_VERSIONS

V0 = Version.V2021_3_0
VE = Version.V2021_3_6_EAGER
VD = Version.V2021_3_6_DEFER


@pytest.fixture
def ad():
    return AtomicDomain(
        {
            "load", "store", "add", "sub", "inc", "dec",
            "fetch_add", "fetch_sub", "fetch_inc", "fetch_dec",
            "bit_and", "bit_or", "bit_xor",
            "fetch_bit_and", "fetch_bit_or", "fetch_bit_xor",
            "min", "max", "fetch_min", "fetch_max", "compare_exchange",
        },
        "u64",
    )


class TestArithmetic:
    def test_load_store(self, ctx, ad):
        g = new_("u64", 3)
        ad.store(g, 10).wait()
        assert ad.load(g).wait() == 10

    def test_add_sub(self, ctx, ad):
        g = new_("u64", 100)
        ad.add(g, 5).wait()
        ad.sub(g, 3).wait()
        assert ad.load(g).wait() == 102

    def test_fetch_add_returns_old(self, ctx, ad):
        g = new_("u64", 7)
        assert ad.fetch_add(g, 3).wait() == 7
        assert ad.load(g).wait() == 10

    def test_fetch_sub(self, ctx, ad):
        g = new_("u64", 10)
        assert ad.fetch_sub(g, 4).wait() == 10
        assert ad.load(g).wait() == 6

    def test_inc_dec(self, ctx, ad):
        g = new_("u64", 5)
        ad.inc(g).wait()
        ad.inc(g).wait()
        ad.dec(g).wait()
        assert ad.load(g).wait() == 6

    def test_fetch_inc_fetch_dec(self, ctx, ad):
        g = new_("u64", 1)
        assert ad.fetch_inc(g).wait() == 1
        assert ad.fetch_dec(g).wait() == 2
        assert ad.load(g).wait() == 1

    def test_u64_wraparound(self, ctx, ad):
        g = new_("u64", (1 << 64) - 1)
        ad.add(g, 1).wait()
        assert ad.load(g).wait() == 0

    def test_signed_wraparound(self, ctx):
        ad = AtomicDomain({"add", "load"}, "i64")
        g = new_("i64", (1 << 63) - 1)
        ad.add(g, 1).wait()
        assert ad.load(g).wait() == -(1 << 63)

    def test_bitwise(self, ctx, ad):
        g = new_("u64", 0b1100)
        ad.bit_and(g, 0b1010).wait()
        assert ad.load(g).wait() == 0b1000
        ad.bit_or(g, 0b0001).wait()
        assert ad.load(g).wait() == 0b1001
        ad.bit_xor(g, 0b1111).wait()
        assert ad.load(g).wait() == 0b0110

    def test_fetch_bitwise(self, ctx, ad):
        g = new_("u64", 0b11)
        assert ad.fetch_bit_xor(g, 0b01).wait() == 0b11
        assert ad.load(g).wait() == 0b10

    def test_min_max(self, ctx, ad):
        g = new_("u64", 50)
        ad.min(g, 10).wait()
        assert ad.load(g).wait() == 10
        ad.max(g, 99).wait()
        assert ad.load(g).wait() == 99
        assert ad.fetch_min(g, 98).wait() == 99
        assert ad.fetch_max(g, 1).wait() == 98

    def test_compare_exchange_success(self, ctx, ad):
        g = new_("u64", 5)
        assert ad.compare_exchange(g, 5, 9).wait() == 5
        assert ad.load(g).wait() == 9

    def test_compare_exchange_failure(self, ctx, ad):
        g = new_("u64", 5)
        assert ad.compare_exchange(g, 4, 9).wait() == 5
        assert ad.load(g).wait() == 5

    def test_float_domain(self, ctx):
        ad = AtomicDomain({"add", "load", "fetch_add"}, "f64")
        g = new_("f64", 1.5)
        assert ad.fetch_add(g, 0.25).wait() == 1.5
        assert ad.load(g).wait() == 1.75


class TestNonValueFetching:
    """§III-B: fetch-into variants write the value to memory."""

    def test_fetch_add_into(self, ctx, ad):
        g = new_("u64", 40)
        result = new_("u64", 0)
        fut = ad.fetch_add_into(g, 2, result)
        fut.wait()
        assert result.local().read() == 40
        assert ad.load(g).wait() == 42

    def test_load_into(self, ctx, ad):
        g = new_("u64", 11)
        result = new_("u64")
        ad.load_into(g, result).wait()
        assert result.local().read() == 11

    def test_compare_exchange_into(self, ctx, ad):
        g = new_("u64", 5)
        result = new_("u64")
        ad.compare_exchange_into(g, 5, 8, result).wait()
        assert result.local().read() == 5
        assert ad.load(g).wait() == 8

    def test_into_future_is_valueless(self, ctx, ad):
        g = new_("u64")
        result = new_("u64")
        fut = ad.fetch_add_into(g, 1, result)
        assert fut.nvalues == 0
        fut.wait()

    def test_into_unavailable_on_2021_3_0(self, versioned_ctx):
        versioned_ctx(V0)
        ad = AtomicDomain({"fetch_add"}, "u64")
        g = new_("u64")
        result = new_("u64")
        with pytest.raises(AtomicDomainError):
            ad.fetch_add_into(g, 1, result)

    def test_eager_into_allocates_nothing(self, versioned_ctx):
        """The §III-B payoff: non-value fetch + eager = zero allocations."""
        c = versioned_ctx(VE)
        ad = AtomicDomain({"fetch_add"}, "u64")
        g = new_("u64")
        result = new_("u64")
        before = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        ad.fetch_add_into(g, 1, result).wait()
        assert c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before

    def test_eager_value_fetch_allocates_once(self, versioned_ctx):
        c = versioned_ctx(VE)
        ad = AtomicDomain({"fetch_add"}, "u64")
        g = new_("u64")
        before = c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL)
        ad.fetch_add(g, 1).wait()
        assert (
            c.costs.count(CostAction.HEAP_ALLOC_PROMISE_CELL) == before + 1
        )

    def test_into_nonfetching_op_rejected(self, ctx, ad):
        g = new_("u64")
        with pytest.raises(AtomicDomainError):
            ad._issue("add", g, 1, result_into=new_("u64"))


class TestDomainRules:
    def test_op_not_in_domain(self, ctx):
        ad = AtomicDomain({"add"}, "u64")
        g = new_("u64")
        with pytest.raises(AtomicDomainError):
            ad.fetch_add(g, 1)

    def test_unknown_op_name(self, ctx):
        with pytest.raises(AtomicDomainError):
            AtomicDomain({"swizzle"}, "u64")

    def test_bitwise_on_float_rejected(self, ctx):
        with pytest.raises(AtomicDomainError):
            AtomicDomain({"bit_xor"}, "f64")

    def test_type_mismatch(self, ctx, ad):
        g = new_("i64")
        with pytest.raises(AtomicDomainError):
            ad.add(g, 1)

    def test_null_target(self, ctx, ad):
        with pytest.raises(InvalidGlobalPointer):
            ad.add(GlobalPtr.NULL, 1)

    def test_use_after_destroy(self, ctx, ad):
        g = new_("u64")
        ad.destroy()
        with pytest.raises(AtomicDomainError):
            ad.add(g, 1)


class TestNotificationSemantics:
    def test_eager_amo_ready_at_initiation(self, versioned_ctx):
        versioned_ctx(VE)
        ad = AtomicDomain({"add"}, "u64")
        g = new_("u64")
        assert ad.add(g, 1).is_ready()

    def test_defer_amo_needs_progress(self, versioned_ctx):
        ctx = versioned_ctx(VD)
        ad = AtomicDomain({"add"}, "u64")
        g = new_("u64")
        fut = ad.add(g, 1)
        assert not fut.is_ready()
        assert g.local().read() == 1  # the RMW itself was synchronous
        ctx.progress()
        assert fut.is_ready()

    def test_promise_tracking(self, ctx):
        ad = AtomicDomain({"bit_xor"}, "u64")
        g = new_("u64", 0)
        p = Promise()
        for i in range(5):
            ad.bit_xor(g, 1 << i, operation_cx.as_promise(p))
        p.finalize().wait()
        assert ad_load_value(g) == 0b11111


def ad_load_value(g):
    return AtomicDomain({"load"}, "u64").load(g).wait()


@pytest.mark.parametrize("version", ALL_VERSIONS)
class TestCrossRank:
    def test_amo_on_peer_memory(self, version):
        def body():
            from repro import barrier

            ad = AtomicDomain({"add", "load"}, "u64")
            g = new_("u64", 0)
            barrier()
            target = GlobalPtr(0, g.offset, g.ts)  # everyone hits rank 0
            ad.add(target, 1).wait()
            barrier()
            if rank_me() == 0:
                return ad.load(g).wait()
            return None

        res = spmd_run(body, ranks=4, version=version)
        assert res.values[0] == 4

    def test_fetch_add_claims_unique_slots(self, version):
        """The mailbox-cursor idiom used by the matching application."""

        def body():
            from repro import barrier

            ad = AtomicDomain({"fetch_add"}, "u64")
            g = new_("u64", 0)
            barrier()
            target = GlobalPtr(0, g.offset, g.ts)
            slots = [int(ad.fetch_add(target, 1).wait()) for _ in range(3)]
            barrier()
            return slots

        res = spmd_run(body, ranks=4, version=version)
        all_slots = [s for v in res.values for s in v]
        assert sorted(all_slots) == list(range(12))
