"""Property-based tests for the applications: GUPS checksum invariance and
matching invariants on random graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.graphs import Graph, edge_weight
from repro.apps.gups import GupsConfig, run_gups
from repro.apps.matching import (
    MatchingConfig,
    matching_weight,
    run_matching,
    serial_matching,
)
from repro.runtime.config import Version


def random_graph(n, edge_indices):
    """Build a graph from hypothesis-chosen (u, v) index pairs."""
    adj = [[] for _ in range(n)]
    seen = set()
    for u, v in edge_indices:
        u, v = u % n, v % n
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        w = edge_weight(*key)
        adj[key[0]].append((key[1], w))
        adj[key[1]].append((key[0], w))
    return Graph("hyp", n, adj)


class TestMatchingProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(6, 40),
        edges=st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
            min_size=4,
            max_size=120,
        ),
        ranks=st.sampled_from([2, 3, 4]),
    )
    def test_distributed_equals_serial_on_arbitrary_graphs(
        self, n, edges, ranks
    ):
        g = random_graph(n, edges)
        cfg = MatchingConfig(graph="random", scale=1)
        r = run_matching(cfg, ranks=ranks, graph=g, machine="generic")
        assert r.mate == serial_matching(g)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(4, 30),
        edges=st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 500)),
            min_size=2,
            max_size=80,
        ),
    )
    def test_matching_validity_invariants(self, n, edges):
        g = random_graph(n, edges)
        mate = serial_matching(g)
        neighbors = [set(v for v, _ in g.adj[u]) for u in range(n)]
        for v, m in enumerate(mate):
            if m >= 0:
                assert mate[m] == v  # symmetry
                assert m in neighbors[v]  # real edge
        # maximality: no edge with both endpoints unmatched
        for u, v, _ in g.edges():
            assert not (mate[u] < 0 and mate[v] < 0)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(6, 24),
        edges=st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 300)),
            min_size=3,
            max_size=50,
        ),
    )
    def test_half_approximation_via_exact(self, n, edges):
        import networkx as nx

        g = random_graph(n, edges)
        mate = serial_matching(g)
        ours = matching_weight(g, mate)
        nxg = nx.Graph()
        for u, v, w in g.edges():
            nxg.add_edge(u, v, weight=w)
        opt = sum(
            nxg[u][v]["weight"] for u, v in nx.max_weight_matching(nxg)
        )
        assert ours >= 0.5 * opt - 1e-12
        assert ours <= opt + 1e-12


class TestGupsProperties:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        variant=st.sampled_from(
            ["raw", "manual", "amo_promise", "amo_future"]
        ),
        ranks=st.sampled_from([1, 2, 4]),
    )
    def test_exact_variants_match_oracle_for_any_seed(
        self, seed, variant, ranks
    ):
        cfg = GupsConfig(
            variant=variant, table_log2=9, updates_per_rank=32,
            batch=8, seed=seed,
        )
        r = run_gups(cfg, ranks=ranks, machine="generic")
        assert r.matches_oracle

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_checksum_version_invariant(self, seed):
        """Functional results are identical across library builds."""
        cfg = GupsConfig(
            variant="amo_promise", table_log2=9, updates_per_rank=32,
            batch=8, seed=seed,
        )
        sums = {
            v: run_gups(cfg, ranks=2, version=v, machine="generic").checksum
            for v in Version
        }
        assert len(set(sums.values())) == 1
