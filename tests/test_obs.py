"""The observability layer: spans, metrics, exporters, and — most
importantly — the paper's notification-gap claims pinned as *ordering*
assertions on spans rather than timing heuristics.

The load-bearing tests:

* an eager, value-less, pshm-local operation has a notification gap of
  **exactly zero** (the transfer-complete and notification-dispatched
  stamps coincide);
* a deferred operation's notification stays undelivered until a
  ``progress()`` call dispatches it, and the resulting gap is bounded
  below by the progress-poll cost;
* turning observability on changes **nothing** measurable: virtual solve
  times and checksums are bit-identical with the flag on or off.
"""

import json

import pytest

from repro import new_, operation_cx, rput
from repro.obs import (
    DEPTH_EDGES,
    LATENCY_EDGES_NS,
    CounterMetric,
    HistogramMetric,
    MetricsRegistry,
    SpanRecorder,
    chrome_trace,
    merge_metrics,
    merge_obs_snapshots,
    trace_events,
    validate_trace_events,
    write_chrome_trace,
)
from repro.rma import rget
from repro.runtime.runtime import spmd_run
from repro.sim.costmodel import CostAction
from repro.sim.stats import (
    gather_rank_snapshots,
    observability_snapshots,
    observability_stats,
)

from tests.conftest import VD, VE, obs_flags


# ---------------------------------------------------------------------------
# metrics primitives
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter(self):
        c = CounterMetric("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_histogram_bucketing(self):
        h = HistogramMetric("h", (0.0, 10.0, 100.0))
        h.record(0.0)  # exactly zero -> first bucket
        h.record(5.0)
        h.record(10.0)  # on-edge -> its own bucket, not the next
        h.record(50.0)
        h.record(1000.0)  # overflow
        assert h.counts == [1, 2, 1, 1]
        assert h.n == 5
        assert h.min == 0.0 and h.max == 1000.0
        snap = h.snapshot()
        assert snap.mean == pytest.approx(1065.0 / 5)
        assert snap.bucket_label(0) == "<= 0"
        assert snap.bucket_label(len(snap.edges)) == "> 100"

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            HistogramMetric("h", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            HistogramMetric("h", (2.0, 1.0))

    def test_registry_lazy_and_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")
        reg.counter("a").inc(3)
        snap = reg.snapshot()
        assert snap.counters == {"a": 3}

    def test_merge_metrics(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("c").inc(2)
        r2.counter("c").inc(5)
        r1.histogram("h", DEPTH_EDGES).record(1)
        r2.histogram("h", DEPTH_EDGES).record(100)
        m = merge_metrics([r1.snapshot(), r2.snapshot()])
        assert m.counters["c"] == 7
        assert m.histograms["h"].n == 2
        assert m.histograms["h"].min == 1.0
        assert m.histograms["h"].max == 100.0

    def test_merge_rejects_mismatched_edges(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("h", (0.0, 1.0)).record(0)
        r2.histogram("h", (0.0, 2.0)).record(0)
        with pytest.raises(ValueError):
            merge_metrics([r1.snapshot(), r2.snapshot()])


class TestSpanRecorder:
    def test_capacity_drops_but_spans_still_stamp(self):
        rec = SpanRecorder(rank=0, capacity=2)
        spans = [rec.begin("op", "eager", float(i)) for i in range(5)]
        assert len(rec.spans) == 2
        assert rec.dropped == 3
        # dropped spans remain usable by the in-flight operation
        spans[4].t_transfer = 9.0
        spans[4].t_dispatched = 9.0
        assert spans[4].notification_gap_ns == 0.0

    def test_sids_unique(self):
        rec = SpanRecorder(rank=0, capacity=8)
        sids = [rec.begin("op", "none", 0.0).sid for _ in range(4)]
        assert sids == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# the notification-gap claims (single-rank, ambient world)
# ---------------------------------------------------------------------------


class TestNotificationGap:
    def test_flag_off_means_no_obs_state(self, versioned_ctx):
        ctx = versioned_ctx(VE)
        assert ctx.obs is None

    def test_eager_valueless_pshm_gap_exactly_zero(self, versioned_ctx):
        ctx = versioned_ctx(VE, flags=obs_flags(VE))
        g = new_("u64")
        fut = rput(1, g, operation_cx.as_future())
        assert fut.is_ready()
        span = ctx.obs.spans.spans[-1]
        assert span.op == "rput"
        assert (span.mode, span.locality) == ("eager", "pshm")
        assert span.notification_gap_ns == 0.0

    def test_defer_gap_closed_only_by_progress(self, versioned_ctx):
        ctx = versioned_ctx(VD, flags=obs_flags(VD))
        g = new_("u64")
        fut = rput(1, g, operation_cx.as_future())
        span = ctx.obs.spans.spans[-1]
        # the transfer finished synchronously, the notification did not:
        # this ordering — not a timing threshold — is the deferred story
        assert span.t_transfer is not None
        assert span.t_dispatched is None
        assert not fut.is_ready()
        ctx.progress()
        assert fut.is_ready()
        assert span.t_dispatched is not None
        gap = span.notification_gap_ns
        # the gap can never be cheaper than entering the progress engine
        assert gap >= ctx.profile.cost_ns(CostAction.PROGRESS_POLL)

    def test_eager_value_producing_gap_is_alloc_only(self, versioned_ctx):
        """A value-producing eager rget pays only the result-cell
        allocation between transfer and dispatch — strictly less than
        any deferred round-trip through the progress queue."""
        ctx = versioned_ctx(VE, flags=obs_flags(VE))
        g = new_("u64", 7)
        assert rget(g, operation_cx.as_future()).wait() == 7
        eager_gap = ctx.obs.spans.spans[-1].notification_gap_ns

        ctx = versioned_ctx(VD, flags=obs_flags(VD))
        g = new_("u64", 7)
        assert rget(g, operation_cx.as_future()).wait() == 7
        defer_gap = ctx.obs.spans.spans[-1].notification_gap_ns

        assert eager_gap is not None and defer_gap is not None
        assert 0.0 <= eager_gap < defer_gap

    def test_wait_stamps_t_waited(self, versioned_ctx):
        ctx = versioned_ctx(VD, flags=obs_flags(VD))
        g = new_("u64")
        rput(1, g, operation_cx.as_future()).wait()
        span = ctx.obs.spans.spans[-1]
        assert span.t_waited is not None
        assert span.t_waited >= span.t_dispatched


# ---------------------------------------------------------------------------
# world rollups + the spmd path
# ---------------------------------------------------------------------------


def _two_rank_put_body():
    from repro import barrier, rank_me
    from repro.memory.global_ptr import GlobalPtr

    tgt = new_("u64", 0)
    barrier()
    if rank_me() == 0:
        remote = GlobalPtr(1, tgt.offset, tgt.ts)
        for _ in range(8):
            rput(1, remote, operation_cx.as_future()).wait()
    barrier()
    return 0


class TestWorldRollup:
    def test_flag_off_snapshots_empty(self):
        res = spmd_run(_two_rank_put_body, ranks=2, version=VE)
        assert observability_snapshots(res.world) == []
        assert observability_stats(res.world) is None

    def test_eager_vs_defer_gap_classes(self):
        res_e = spmd_run(
            _two_rank_put_body, ranks=2, version=VE, flags=obs_flags(VE)
        )
        res_d = spmd_run(
            _two_rank_put_body, ranks=2, version=VD, flags=obs_flags(VD)
        )
        se = observability_stats(res_e.world)
        sd = observability_stats(res_d.world)
        ge = se.gap("eager", "pshm")
        gd = sd.gap("defer", "pshm")
        assert ge.count == 8 and ge.zeros == 8 and ge.mean_ns == 0.0
        assert gd.count == 8 and gd.zeros == 0 and gd.mean_ns > 0.0
        # the deferred world actually sampled its progress queue
        depth = sd.metrics.histograms["progress.deferred_depth"]
        assert depth.n > 0

    def test_gather_rank_snapshots_skips_none(self):
        res = spmd_run(
            _two_rank_put_body, ranks=2, version=VE, flags=obs_flags(VE)
        )
        marks = gather_rank_snapshots(
            res.world, lambda ctx: ctx.rank if ctx.rank else None
        )
        assert marks == [1]
        snaps = observability_snapshots(res.world)
        assert [s.rank for s in snaps] == [0, 1]

    def test_merge_counts_dropped(self, versioned_ctx):
        ctx = versioned_ctx(
            VE, flags=obs_flags(VE).replace(obs_span_capacity=2)
        )
        g = new_("u64")
        for _ in range(5):
            rput(1, g, operation_cx.as_future()).wait()
        stats = merge_obs_snapshots([ctx.obs.snapshot()])
        assert stats.total_dropped == 3
        assert stats.total_spans == 5


# ---------------------------------------------------------------------------
# the flag must not move a single virtual tick
# ---------------------------------------------------------------------------


class TestZeroPerturbation:
    @pytest.mark.parametrize("version", [VD, VE])
    def test_gups_bit_identical_with_obs_on(self, version):
        from repro.apps.gups import GupsConfig, run_gups

        cfg = GupsConfig(table_log2=8, updates_per_rank=24, batch=8)
        base = run_gups(cfg, ranks=4, version=version, machine="intel")
        traced = run_gups(
            cfg,
            ranks=4,
            version=version,
            machine="intel",
            flags=obs_flags(version),
        )
        assert traced.solve_ns == base.solve_ns
        assert traced.checksum == base.checksum
        assert traced.gups == base.gups
        assert traced.obs_stats is not None and base.obs_stats is None


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class TestExport:
    def _snapshots(self):
        res = spmd_run(
            _two_rank_put_body, ranks=2, version=VD, flags=obs_flags(VD)
        )
        return observability_snapshots(res.world)

    def test_trace_events_validate_clean(self):
        events = trace_events(self._snapshots())
        assert validate_trace_events(events) == []
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        # metadata first, then time-ordered
        body = [e for e in events if e["ph"] != "M"]
        assert all(
            body[i]["ts"] <= body[i + 1]["ts"] for i in range(len(body) - 1)
        )

    def test_span_args_carry_gap(self):
        events = trace_events(self._snapshots())
        puts = [
            e for e in events if e["ph"] == "X" and e["name"] == "rput"
        ]
        assert puts
        for e in puts:
            assert e["args"]["mode"] == "defer"
            assert e["args"]["notification_gap_ns"] > 0

    def test_chrome_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._snapshots())
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ns"
        assert validate_trace_events(doc) == []

    def test_validator_flags_garbage(self):
        errs = validate_trace_events(
            [{"name": "x"}, {"ph": "Z", "name": 3, "pid": "a", "tid": 0}]
        )
        assert errs
        assert validate_trace_events({"no": "events"})

    def test_validator_accepts_empty_run_document(self):
        """Zero ops -> zero events; the document still loads in both
        viewers, so it must validate clean (regression: empty used to be
        reported as an error)."""
        assert validate_trace_events({"traceEvents": []}) == []
        assert validate_trace_events([]) == []


# ---------------------------------------------------------------------------
# harness integration
# ---------------------------------------------------------------------------


class TestTracedHarness:
    def test_traced_gups_writes_valid_trace(self, tmp_path):
        from repro.apps.gups import GupsConfig
        from repro.bench.harness import traced_gups

        path = tmp_path / "gups.trace.json"
        res = traced_gups(
            GupsConfig(table_log2=8, updates_per_rank=16, batch=8),
            ranks=4,
            version=VE,
            trace_path=path,
        )
        assert res.obs_stats is not None
        assert res.obs_stats.ranks == 4
        doc = json.loads(path.read_text())
        assert validate_trace_events(doc) == []

    def test_traced_micro_reports_gap(self):
        from repro.bench.harness import traced_micro

        ns_e, _, stats_e = traced_micro("put", VE, "intel", n_ops=16)
        ns_d, _, stats_d = traced_micro("put", VD, "intel", n_ops=16)
        assert ns_e < ns_d
        assert stats_e.gap("eager", "pshm").mean_ns == 0.0
        assert stats_d.gap("defer", "pshm").mean_ns > 0.0

    def test_notification_report_renders(self):
        from repro.bench.report import (
            format_notification_report,
            format_span_timeline,
        )

        res = spmd_run(
            _two_rank_put_body, ranks=2, version=VD, flags=obs_flags(VD)
        )
        stats = observability_stats(res.world)
        text = format_notification_report("t", stats)
        assert "defer" in text and "zero-gap" in text
        snaps = observability_snapshots(res.world)
        timeline = format_span_timeline(snaps, limit=5)
        assert "rput" in timeline


# ---------------------------------------------------------------------------
# fixed-bucket quantile helper
# ---------------------------------------------------------------------------


class TestHistogramQuantile:
    def test_quantile_interpolates_within_bucket(self):
        h = HistogramMetric("t", edges=(10.0, 100.0, 1000.0))
        for v in (5.0, 50.0, 60.0, 70.0, 500.0):
            h.record(v)
        snap = h.snapshot()
        # rank 2 of 5 lands on the middle (10, 100] bucket
        assert 10.0 <= snap.quantile(0.5) <= 100.0
        # extremes clamp to the observed min/max, so the unbounded
        # first/overflow buckets stay answerable
        assert snap.quantile(0.0) == pytest.approx(5.0, abs=25.0)
        assert snap.quantile(1.0) <= 500.0

    def test_quantile_monotone_in_q(self):
        h = HistogramMetric("t", edges=LATENCY_EDGES_NS)
        for v in (3.0, 17.0, 230.0, 999.0, 40_000.0, 2e6):
            h.record(v)
        snap = h.snapshot()
        qs = (0.0, 0.25, 0.5, 0.9, 0.99, 1.0)
        vals = [snap.quantile(q) for q in qs]
        assert vals == sorted(vals)

    def test_quantile_empty_and_bounds(self):
        snap = HistogramMetric("t", edges=(1.0, 2.0)).snapshot()
        assert snap.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            snap.quantile(2.0)


class TestHistogramQuantileEdgeCases:
    """Pinned edge cases: the extremes are *recorded* (min/max), so the
    quantile must return them exactly — never an edge-extrapolated guess
    from an unbounded bucket."""

    def test_q1_in_overflow_bucket_is_exact_max(self):
        h = HistogramMetric("t", edges=(10.0, 100.0))
        for v in (5.0, 50.0, 77777.0):  # max lands past the last edge
            h.record(v)
        snap = h.snapshot()
        assert snap.quantile(1.0) == 77777.0

    def test_q0_is_exact_min(self):
        h = HistogramMetric("t", edges=(10.0, 100.0))
        for v in (3.0, 50.0, 500.0):
            h.record(v)
        assert h.snapshot().quantile(0.0) == 3.0

    def test_single_sample_every_q(self):
        h = HistogramMetric("t", edges=(10.0, 100.0))
        h.record(42.0)
        snap = h.snapshot()
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert snap.quantile(q) == 42.0

    def test_all_samples_one_bucket_clamped_to_observed_range(self):
        h = HistogramMetric("t", edges=(10.0, 100.0, 1000.0))
        for v in (40.0, 50.0, 60.0):  # all in (10, 100]
            h.record(v)
        snap = h.snapshot()
        for q in (0.0, 0.3, 0.5, 0.9, 1.0):
            assert 40.0 <= snap.quantile(q) <= 60.0

    def test_monotone_with_overflow_and_underflow(self):
        h = HistogramMetric("t", edges=(10.0, 100.0))
        for v in (1.0, 2.0, 55.0, 200.0, 90000.0):
            h.record(v)
        snap = h.snapshot()
        qs = (0.0, 0.2, 0.5, 0.8, 0.999, 1.0)
        vals = [snap.quantile(q) for q in qs]
        assert vals == sorted(vals)
        assert vals[0] == 1.0 and vals[-1] == 90000.0


# ---------------------------------------------------------------------------
# serving request spans in the trace export
# ---------------------------------------------------------------------------


class TestServeExport:
    def _serve_snapshots(self):
        from repro.serve import ServeConfig
        from repro.serve.driver import _serve_body_gen

        cfg = ServeConfig(
            log2_slots=9,
            key_space=64,
            requests_per_rank=16,
            offered_rate_rps=2e6,
            seed=5,
        )
        res = spmd_run(
            _serve_body_gen,
            args=(cfg,),
            ranks=2,
            version=VE,
            flags=obs_flags(VE),
            seed=cfg.seed,
            segment_bytes=1 << 17,
        )
        return observability_snapshots(res.world)

    def test_request_bars_and_instants_validate(self):
        snaps = self._serve_snapshots()
        events = trace_events(snaps)
        assert validate_trace_events(events) == []
        bars = [
            e for e in events
            if e["ph"] == "X" and e["name"].startswith("req:")
        ]
        assert len(bars) == 2 * 16
        for e in bars:
            cat = e["cat"].split(",")
            assert cat[0] == "request"
            assert cat[1] in ("hot", "warm", "cold")
            assert e["args"]["latency_ns"] >= 0.0
            assert e["args"]["queue_ns"] >= 0.0
            assert isinstance(e["args"]["slo_missed"], bool)
            assert isinstance(e["args"]["op_sids"], list)
        arrivals = [e for e in events if e["name"] == "request:arrival"]
        deadlines = [
            e for e in events if e["name"] == "request:slo_deadline"
        ]
        assert len(arrivals) == len(bars)
        assert len(deadlines) == len(bars)
        for e in arrivals + deadlines:
            assert e["ph"] == "i"
            assert e.get("s", "t") in ("t", "p", "g")

    def test_request_events_can_be_suppressed(self):
        snaps = self._serve_snapshots()
        events = trace_events(snaps, request_events=False)
        assert validate_trace_events(events) == []
        assert not [
            e for e in events
            if e["name"].startswith(("req:", "request:"))
        ]
        # op spans are untouched by the toggle
        assert [e for e in events if e["ph"] == "X"]

    def test_request_spans_roll_up_in_merge(self):
        snaps = self._serve_snapshots()
        merged = merge_obs_snapshots(snaps)
        assert merged.total_requests == 2 * 16
        assert merged.total_requests_dropped == 0
        assert sum(merged.requests_by_op.values()) == 2 * 16

    def test_validator_rejects_bad_instant_scope(self):
        errs = validate_trace_events(
            [{
                "name": "x", "ph": "i", "pid": 0, "tid": 0,
                "ts": 0.0, "s": "q",
            }]
        )
        assert any("scope" in e for e in errs)
