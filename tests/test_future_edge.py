"""Edge-case tests for future composition and callback behaviour."""

import pytest

from repro.core.cell import PromiseCell, alloc_cell
from repro.core.future import Future, make_future
from repro.core.when_all import when_all
from repro.errors import FutureError
from repro.runtime.config import Version
from repro.sim.costmodel import CostAction


class TestThenEdgeCases:
    def test_deep_flatten_chain(self, ctx):
        """then returning a future returning a future: each level is
        adopted exactly once."""
        f = make_future(1).then(
            lambda v: make_future(v + 1).then(lambda w: make_future(w + 1))
        )
        assert f.result() == 3

    def test_then_on_multi_value_future(self, ctx):
        f = make_future(2, 3, 4).then(lambda a, b, c: a + b + c)
        assert f.result() == 9

    def test_then_callback_arity_mismatch_raises(self, ctx):
        with pytest.raises(TypeError):
            make_future(1, 2).then(lambda a: a)

    def test_deferred_then_chain_resolves_in_order(self, ctx):
        cell = PromiseCell(deps=1)
        order = []
        f = Future(cell)
        f.then(lambda: order.append("first"))
        f.then(lambda: order.append("second"))
        cell.fulfill()
        assert order == ["first", "second"]

    def test_then_callback_exception_propagates_at_fulfill(self, ctx):
        cell = PromiseCell(deps=1)
        Future(cell).then(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            cell.fulfill()

    def test_then_result_usable_in_when_all(self, ctx):
        cell = PromiseCell(deps=1)
        derived = Future(cell).then(lambda: 7)
        combined = when_all(make_future(1), derived)
        assert not combined._cell.ready
        cell.fulfill()
        assert combined.result_tuple() == (1, 7)


class TestThenScheduleCharge:
    """Regression pins for the FUTURE_CALLBACK_SCHEDULE accounting.

    The schedule charge models registering the callback machinery on the
    future's cell; it is paid at most once per future.  A ready future on
    a deferred build used to re-charge it on *every* ``.then`` — and a
    future that was charged while pending re-charged once it turned
    ready — double-counting work the runtime only performs once."""

    def _charges(self, c):
        return c.costs.count(CostAction.FUTURE_CALLBACK_SCHEDULE)

    def test_ready_defer_second_then_not_recharged(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_DEFER)
        f = make_future(1)
        k0 = self._charges(c)
        f.then(lambda v: v)
        assert self._charges(c) == k0 + 1
        f.then(lambda v: v)  # the regression: this used to charge again
        assert self._charges(c) == k0 + 1

    def test_pending_then_ready_rethen_not_recharged(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_DEFER)
        cell = PromiseCell(deps=1)
        f = Future(cell)
        k0 = self._charges(c)
        f.then(lambda: None)  # pending path: charged here
        assert self._charges(c) == k0 + 1
        cell.fulfill()
        f.then(lambda: None)  # ready now; already charged while pending
        assert self._charges(c) == k0 + 1

    def test_distinct_futures_each_charge(self, versioned_ctx):
        c = versioned_ctx(Version.V2021_3_6_DEFER)
        k0 = self._charges(c)
        make_future(1).then(lambda v: v)
        make_future(2).then(lambda v: v)
        assert self._charges(c) == k0 + 2

    def test_ready_eager_fast_path_still_free(self, versioned_ctx):
        """The eager-build ready fast path never paid the charge and
        still must not (the dedupe flag is irrelevant there)."""
        c = versioned_ctx(Version.V2021_3_6_EAGER)
        f = make_future(1)
        k0 = self._charges(c)
        f.then(lambda v: v)
        f.then(lambda v: v)
        assert self._charges(c) == k0


class TestWhenAllEdgeCases:
    def test_single_input_passthrough_semantics(self, versioned_ctx):
        versioned_ctx(Version.V2021_3_6_EAGER)
        p = Future(PromiseCell(nvalues=2, deps=1))
        out = when_all(p)
        assert out is p  # single contributor shortcut

    def test_when_all_of_when_all(self, ctx):
        cells = [PromiseCell(deps=1) for _ in range(3)]
        inner = when_all(*(Future(c) for c in cells[:2]))
        outer = when_all(inner, Future(cells[2]))
        for c in cells:
            c.fulfill()
        assert outer._cell.ready

    def test_duplicate_future_input(self, ctx):
        """The same pending future conjoined twice must count twice."""
        cell = PromiseCell(deps=1)
        f = Future(cell)
        combined = when_all(f, f)
        cell.fulfill()
        assert combined._cell.ready

    def test_value_ordering_with_duplicates(self, ctx):
        f = make_future(5)
        assert when_all(f, f).result_tuple() == (5, 5)

    def test_legacy_ready_value_inputs(self, versioned_ctx):
        versioned_ctx(Version.V2021_3_0)
        out = when_all(make_future(1), make_future(2))
        assert out.result_tuple() == (1, 2)


class TestResultAccess:
    def test_result_tuple_vs_result(self, ctx):
        f = make_future(1)
        assert f.result() == 1
        assert f.result_tuple() == (1,)

    def test_valueless_result_is_none(self, ctx):
        assert make_future().result() is None
        assert make_future().result_tuple() == ()

    def test_nonready_result_raises_without_wait(self, ctx):
        f = Future(PromiseCell(deps=1))
        with pytest.raises(FutureError):
            f.result()
        with pytest.raises(FutureError):
            f.result_tuple()

    def test_repeated_result_reads(self, ctx):
        f = make_future([1, 2])
        assert f.result() is f.result()  # same object, not re-produced
