"""Multi-node (off-node) behaviour across conduits.

The paper's experiments are single-node, but the implementation must stay
correct when ranks live on different nodes (the distributed-memory case
eager notification explicitly must not regress, §IV-A).
"""

import pytest

from repro import (
    AtomicDomain,
    barrier,
    new_,
    progress,
    rank_me,
    rget,
    rpc,
    rput,
)
from repro.errors import DeadlockError
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.context import current_ctx
from repro.runtime.runtime import spmd_run

CONDUITS = ("udp", "mpi", "ibv")


def serve_until_flag(ctx):
    """Spin providing progress until the world-level done flag is set."""
    while not getattr(ctx.world, "_done_flag", False):
        progress()
        ctx.yield_to_others()


@pytest.mark.parametrize("conduit", CONDUITS)
class TestOffnodeOps:
    def test_put_get_roundtrip(self, conduit):
        def body():
            ctx = current_ctx()
            g = new_("u64", 5)
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(1, g.offset, g.ts)
                rput(77, remote).wait()
                got = rget(remote).wait()
                ctx.world._done_flag = True
                barrier()
                return got
            serve_until_flag(ctx)
            barrier()
            return g.local().read()

        res = spmd_run(body, ranks=2, n_nodes=2, conduit=conduit)
        assert res.values == [77, 77]

    def test_offnode_amo(self, conduit):
        def body():
            ctx = current_ctx()
            ad = AtomicDomain({"fetch_add"})
            g = new_("u64", 10)
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(1, g.offset, g.ts)
                old = ad.fetch_add(remote, 5).wait()
                ctx.world._done_flag = True
                barrier()
                return old
            serve_until_flag(ctx)
            barrier()
            return g.local().read()

        res = spmd_run(body, ranks=2, n_nodes=2, conduit=conduit)
        assert res.values == [10, 15]

    def test_offnode_rpc(self, conduit):
        def body():
            ctx = current_ctx()
            barrier()
            if rank_me() == 0:
                got = rpc(1, lambda: rank_me() * 100).wait()
                ctx.world._done_flag = True
                barrier()
                return got
            serve_until_flag(ctx)
            barrier()
            return None

        res = spmd_run(body, ranks=2, n_nodes=2, conduit=conduit)
        assert res.values[0] == 100


class TestTopologyEffects:
    def test_is_local_false_across_nodes(self):
        def body():
            g = new_("u64")
            barrier()
            other = GlobalPtr((rank_me() + 2) % 4, g.offset, g.ts)
            same_node = GlobalPtr(rank_me() ^ 1, g.offset, g.ts)
            out = (other.is_local(), same_node.is_local())
            barrier()
            return out

        res = spmd_run(body, ranks=4, n_nodes=2, conduit="udp")
        assert all(v == (False, True) for v in res.values)

    def test_onnode_stays_synchronous_in_multinode_world(self):
        """PSHM bypass applies to co-located ranks even in a multi-node
        job: the eager future is ready at initiation."""

        def body():
            g = new_("u64")
            barrier()
            peer = GlobalPtr(rank_me() ^ 1, g.offset, g.ts)
            f = rput(1, peer)
            ready = f.is_ready()
            f.wait()
            barrier()
            return ready

        res = spmd_run(
            body, ranks=4, n_nodes=2, conduit="udp",
            version=Version.V2021_3_6_EAGER,
        )
        assert all(res.values)

    def test_offnode_latency_dwarfs_onnode(self):
        def body():
            ctx = current_ctx()
            g = new_("u64")
            barrier()
            if rank_me() == 0:
                on = GlobalPtr(1, g.offset, g.ts)
                off = GlobalPtr(2, g.offset, g.ts)
                t0 = ctx.clock.now_ns
                rput(1, on).wait()
                t_on = ctx.clock.now_ns - t0
                t0 = ctx.clock.now_ns
                rput(1, off).wait()
                t_off = ctx.clock.now_ns - t0
                ctx.world._done_flag = True
                barrier()
                return (t_on, t_off)
            serve_until_flag(ctx)
            barrier()
            return None

        res = spmd_run(body, ranks=4, n_nodes=2, conduit="udp",
                       machine="intel")
        t_on, t_off = res.values[0]
        assert t_off > 20 * t_on

    def test_unserved_offnode_op_deadlocks_cleanly(self):
        """If the target node never provides progress the job hangs and
        the simulator reports it (rather than spinning forever)."""

        def body():
            g = new_("u64")
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(1, g.offset, g.ts)
                rget(remote).wait()  # rank 1 never calls progress again
            # rank 1 exits immediately

        with pytest.raises(DeadlockError):
            spmd_run(body, ranks=2, n_nodes=2, conduit="udp")
