"""Exhaustive eager/deferred readiness matrix.

For every (build, operation, completion request) combination, pins down
whether the returned future is ready at initiation — the full decision
table implied by §III-A:

* default ``as_future``: eager only on the eager build;
* explicit ``as_eager_future``: eager on any 2021.3.6 build;
* explicit ``as_defer_future``: never eager;
* all of the above only when the transfer is synchronous (local);
* 2021.3.0: always deferred, explicit factories unavailable.
"""

import pytest

from repro import (
    AtomicDomain,
    new_,
    new_array,
    operation_cx,
    rget,
    rget_into,
    rput,
    rput_bulk,
    rput_strided,
)
from repro.runtime.config import Version

V0 = Version.V2021_3_0
VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER

_AD = None


def issue(op: str, comps):
    """Issue one local op with the given completions; return its future."""
    if op == "rput":
        return rput(1, new_("u64"), comps)
    if op == "rput_bulk":
        return rput_bulk([1, 2], new_array("u64", 2), comps)
    if op == "rput_strided":
        return rput_strided([1, 2], new_array("u64", 4), 2, 2, comps)
    if op == "rget":
        return rget(new_("u64"), comps)
    if op == "rget_into":
        return rget_into(new_("u64"), new_("u64"), 1, comps)
    if op == "amo_add":
        return AtomicDomain({"add"}).add(new_("u64"), 1, comps)
    if op == "amo_fetch_add":
        return AtomicDomain({"fetch_add"}).fetch_add(new_("u64"), 1, comps)
    if op == "amo_fetch_add_into":
        return AtomicDomain({"fetch_add"}).fetch_add_into(
            new_("u64"), 1, new_("u64"), comps
        )
    raise AssertionError(op)


OPS = [
    "rput",
    "rput_bulk",
    "rput_strided",
    "rget",
    "rget_into",
    "amo_add",
    "amo_fetch_add",
]

#: (version, factory) -> expected ready-at-initiation for local ops
EXPECTED = {
    (V0, "default"): False,
    (VD, "default"): False,
    (VE, "default"): True,
    (VD, "eager"): True,
    (VE, "eager"): True,
    (VD, "defer"): False,
    (VE, "defer"): False,
}

FACTORIES = {
    "default": operation_cx.as_future,
    "eager": operation_cx.as_eager_future,
    "defer": operation_cx.as_defer_future,
}


class TestReadinessMatrix:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize(
        "version,factory",
        sorted(EXPECTED, key=lambda k: (k[0].value, k[1])),
    )
    def test_cell(self, versioned_ctx, op, version, factory):
        ctx = versioned_ctx(version)
        fut = issue(op, FACTORIES[factory]())
        expected = EXPECTED[(version, factory)]
        assert fut._cell.ready == expected, (op, version.value, factory)
        if not expected:
            ctx.progress()
            assert fut._cell.ready, "deferred future must ready at progress"

    @pytest.mark.parametrize("op", OPS + ["amo_fetch_add_into"])
    def test_functional_result_is_version_independent(
        self, versioned_ctx, op
    ):
        """Whatever the notification mode, the op's data effect is the
        same (wait() then inspect)."""
        results = []
        for version in (V0, VD, VE):
            if op == "amo_fetch_add_into" and version is V0:
                continue  # op doesn't exist there
            versioned_ctx(version)
            fut = issue(op, operation_cx.as_future())
            val = fut.wait()
            results.append(
                tuple(val) if hasattr(val, "__len__") else val
            )
        assert len(set(map(repr, results))) == 1

    @pytest.mark.parametrize("factory", ["eager", "defer"])
    def test_explicit_factories_rejected_on_2021_3_0(
        self, versioned_ctx, factory
    ):
        from repro.errors import CompletionError

        versioned_ctx(V0)
        with pytest.raises(CompletionError):
            issue("rput", FACTORIES[factory]())
