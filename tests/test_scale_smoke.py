"""Scale smoke tests: larger worlds and longer runs.

Quick versions run by default; the paper-sized configurations are marked
``slow`` (enable with ``pytest --run-slow``).
"""

import pytest

from repro import AtomicDomain, barrier, new_, rank_me, rank_n, rput
from repro.apps.gups import GupsConfig, run_gups
from repro.apps.matching import MatchingConfig, run_matching, serial_matching
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.runtime import spmd_run


class TestManyRanks:
    def test_32_rank_ring(self):
        def body():
            g = new_("u64", 0)
            barrier()
            rput(rank_me(), GlobalPtr((rank_me() + 1) % rank_n(),
                                      g.offset, g.ts)).wait()
            barrier()
            return g.local().read()

        res = spmd_run(body, ranks=32)
        assert res.values == [(r - 1) % 32 for r in range(32)]

    def test_32_rank_atomic_fanin(self):
        def body():
            ad = AtomicDomain({"add", "load"})
            g = new_("u64", 0)
            barrier()
            ad.add(GlobalPtr(0, g.offset, g.ts), 1).wait()
            barrier()
            if rank_me() == 0:
                return ad.load(g).wait()
            return None

        assert spmd_run(body, ranks=32).values[0] == 32

    def test_paper_process_count_gups(self):
        """16 ranks — the paper's reported configuration — at small size."""
        cfg = GupsConfig(
            variant="amo_promise", table_log2=10, updates_per_rank=16,
            batch=8,
        )
        r = run_gups(cfg, ranks=16, machine="intel")
        assert r.matches_oracle


@pytest.mark.slow
class TestPaperScale:
    def test_gups_all_variants_16_ranks(self):
        from repro.apps.gups import GUPS_VARIANTS

        for variant in GUPS_VARIANTS:
            cfg = GupsConfig(
                variant=variant, table_log2=12, updates_per_rank=192,
                batch=32,
            )
            r = run_gups(cfg, ranks=16, machine="intel")
            assert r.passes_hpcc_verification

    def test_matching_16_ranks_scale_4(self):
        for name in ("channel", "youtube"):
            cfg = MatchingConfig(graph=name, scale=4)
            g = cfg.build_graph()
            r = run_matching(cfg, ranks=16, graph=g)
            assert r.mate == serial_matching(g)
