"""The paper's core semantic and cost-structure claims, pinned as tests.

These tests are the heart of the reproduction: they assert *observable*
differences between deferred and eager notification (Listing 1 /
footnote 3), and the structural cost claims of §III/§IV-A (which actions
fire on which path), independent of the calibrated nanosecond constants.
"""

import pytest

from repro import (
    Promise,
    new_,
    operation_cx,
    rank_me,
    rget,
    rget_into,
    rput,
)
from repro.memory.global_ptr import GlobalPtr
from repro.runtime.config import Version
from repro.runtime.runtime import spmd_run
from repro.sim.costmodel import CostAction

V0 = Version.V2021_3_0
VD = Version.V2021_3_6_DEFER
VE = Version.V2021_3_6_EAGER


class TestNotificationTiming:
    """Listing 1: when does the future become ready?"""

    def test_defer_local_put_not_ready_at_initiation(self, versioned_ctx):
        for v in (V0, VD):
            versioned_ctx(v)
            g = new_("u64")
            fut = rput(1, g)
            assert not fut.is_ready()

    def test_eager_local_put_ready_at_initiation(self, versioned_ctx):
        versioned_ctx(VE)
        g = new_("u64")
        assert rput(1, g).is_ready()

    def test_defer_data_still_moves_synchronously(self, versioned_ctx):
        """Deferral delays the *notification*, not the transfer."""
        versioned_ctx(VD)
        g = new_("u64", 0)
        fut = rput(42, g)
        assert g.local().read() == 42  # data visible
        assert not fut.is_ready()  # notification is not

    def test_defer_callback_runs_in_wait_not_then(self, versioned_ctx):
        """The Listing 1 guarantee: under deferred notification the .then
        callback cannot run during then(); it runs inside wait()."""
        ctx = versioned_ctx(VD)
        g = new_("u64")
        ran = []
        f2 = rput(1, g).then(lambda: ran.append("cb"))
        assert ran == []  # not during then()
        f2.wait()
        assert ran == ["cb"]  # ran inside the progress of wait()

    def test_eager_callback_runs_during_then(self, versioned_ctx):
        """Footnote 3's semantic difference, the eager side."""
        versioned_ctx(VE)
        g = new_("u64")
        ran = []
        rput(1, g).then(lambda: ran.append("cb"))
        assert ran == ["cb"]

    def test_explicit_defer_factory_restores_legacy_timing(
        self, versioned_ctx
    ):
        versioned_ctx(VE)
        g = new_("u64")
        fut = rput(1, g, operation_cx.as_defer_future())
        assert not fut.is_ready()
        fut.wait()
        assert fut.is_ready()

    def test_explicit_eager_factory_on_defer_build(self, versioned_ctx):
        versioned_ctx(VD)
        g = new_("u64")
        assert rput(1, g, operation_cx.as_eager_future()).is_ready()

    def test_eager_promise_ready_after_finalize(self, versioned_ctx):
        versioned_ctx(VE)
        g = new_("u64")
        p = Promise()
        rput(1, g, operation_cx.as_promise(p))
        assert p.finalize().is_ready()  # no progress call needed

    def test_defer_promise_needs_progress(self, versioned_ctx):
        ctx = versioned_ctx(VD)
        g = new_("u64")
        p = Promise()
        rput(1, g, operation_cx.as_promise(p))
        f = p.finalize()
        assert not f.is_ready()
        ctx.progress()
        assert f.is_ready()


def _counts_for(version, op, machine="generic"):
    """Action-count delta for one local op under `version`."""
    out = {}

    def body():
        from repro.runtime.context import current_ctx

        ctx = current_ctx()
        g = new_("u64")
        scratch = new_("u64")
        before = ctx.costs.snapshot()
        if op == "put":
            rput(1, g).wait()
        elif op == "get":
            rget(g).wait()
        elif op == "get_nv":
            rget_into(g, scratch, 1).wait()
        after = ctx.costs.snapshot()
        out.update(
            {a: after[a] - before[a] for a in after if after[a] != before[a]}
        )
        return None

    spmd_run(body, ranks=1, version=version, machine=machine)
    return out


class TestCostStructure:
    """§III: which actions fire on which path (count-level claims)."""

    def test_eager_local_put_allocates_nothing(self):
        c = _counts_for(VE, "put")
        assert c.get(CostAction.HEAP_ALLOC_PROMISE_CELL, 0) == 0
        assert c.get(CostAction.HEAP_ALLOC_OP_DESCRIPTOR, 0) == 0
        assert c.get(CostAction.PROGRESS_QUEUE_ENQUEUE, 0) == 0
        assert c.get(CostAction.PROGRESS_DISPATCH, 0) == 0

    def test_defer_local_put_allocates_and_queues(self):
        c = _counts_for(VD, "put")
        assert c[CostAction.HEAP_ALLOC_PROMISE_CELL] == 1
        assert c[CostAction.PROGRESS_QUEUE_ENQUEUE] == 1
        assert c[CostAction.PROGRESS_DISPATCH] == 1

    def test_2021_3_0_has_the_extra_allocation(self):
        """The orthogonal optimization of §IV-A: one descriptor allocation
        eliminated between 2021.3.0 and the 2021.3.6 snapshot."""
        c0 = _counts_for(V0, "put")
        cd = _counts_for(VD, "put")
        assert c0[CostAction.HEAP_ALLOC_OP_DESCRIPTOR] == 1
        assert cd.get(CostAction.HEAP_ALLOC_OP_DESCRIPTOR, 0) == 0

    def test_eager_value_get_still_allocates_once(self):
        """§III-B: the fetched value must live somewhere."""
        c = _counts_for(VE, "get")
        assert c[CostAction.HEAP_ALLOC_PROMISE_CELL] == 1
        assert c.get(CostAction.PROGRESS_QUEUE_ENQUEUE, 0) == 0

    def test_eager_nonvalue_get_allocates_nothing(self):
        c = _counts_for(VE, "get_nv")
        assert c.get(CostAction.HEAP_ALLOC_PROMISE_CELL, 0) == 0

    def test_version_latency_ordering(self):
        """2021.3.0 ≥ 2021.3.6-defer ≥ 2021.3.6-eager for local ops, on
        every machine profile."""
        for machine in ("intel", "ibm", "marvell", "generic"):
            for op in ("put", "get", "get_nv"):
                times = {}
                for v in (V0, VD, VE):
                    def body(op=op):
                        from repro.runtime.context import current_ctx

                        ctx = current_ctx()
                        g = new_("u64")
                        scratch = new_("u64")
                        t0 = ctx.clock.now_ns
                        for _ in range(10):
                            if op == "put":
                                rput(1, g).wait()
                            elif op == "get":
                                rget(g).wait()
                            else:
                                rget_into(g, scratch, 1).wait()
                        return ctx.clock.now_ns - t0

                    times[v] = spmd_run(
                        body, ranks=1, version=v, machine=machine
                    ).values[0]
                assert times[V0] >= times[VD] >= times[VE], (machine, op)


class TestOffNodePath:
    """§IV-A: off-node behaviour across builds."""

    def _offnode_counts(self, version):
        out = {}

        def body():
            from repro import barrier, progress
            from repro.runtime.context import current_ctx

            ctx = current_ctx()
            g = new_("u64")
            barrier()
            if rank_me() == 0:
                remote = GlobalPtr(1, g.offset, g.ts)
                before = ctx.costs.snapshot()
                fut = rput(1, remote)
                assert not fut.is_ready()  # never synchronous off-node
                fut.wait()
                after = ctx.costs.snapshot()
                out.update(
                    {
                        a: after[a] - before[a]
                        for a in after
                        if after[a] != before[a]
                    }
                )
                ctx.world._done = True
            else:
                while not getattr(ctx.world, "_done", False):
                    progress()
                    ctx.yield_to_others()
            barrier()
            return None

        spmd_run(
            body, ranks=2, n_nodes=2, version=version, conduit="udp"
        )
        return out

    def test_offnode_never_eager(self):
        ce = self._offnode_counts(VE)
        assert ce[CostAction.HEAP_ALLOC_PROMISE_CELL] >= 1
        assert ce[CostAction.AM_INJECT] >= 1

    def test_eager_build_adds_exactly_one_branch_offnode(self):
        cd = self._offnode_counts(VD)
        ce = self._offnode_counts(VE)
        assert (
            ce[CostAction.LOCALITY_BRANCH]
            == cd[CostAction.LOCALITY_BRANCH] + 1
        )
        # and nothing else on the initiator's critical path changed
        for action in (
            CostAction.HEAP_ALLOC_PROMISE_CELL,
            CostAction.HEAP_ALLOC_OP_DESCRIPTOR,
            CostAction.AM_INJECT,
        ):
            assert cd.get(action, 0) == ce.get(action, 0)
