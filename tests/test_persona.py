"""Tests for personas and LPC routing."""

import pytest

from repro import barrier, progress, rank_me
from repro.errors import UpcxxError
from repro.runtime.persona import (
    Persona,
    current_persona,
    lpc,
    master_persona,
    persona_scope,
)
from repro.runtime.runtime import spmd_run


class TestStack:
    def test_master_is_default(self, ctx):
        assert current_persona() is master_persona()
        assert master_persona().name == "master"

    def test_scope_activates(self, ctx):
        p = Persona("worker")
        with persona_scope(p):
            assert current_persona() is p
        assert current_persona() is master_persona()

    def test_nested_scopes(self, ctx):
        a, b = Persona("a"), Persona("b")
        with persona_scope(a):
            with persona_scope(b):
                assert current_persona() is b
            assert current_persona() is a

    def test_master_is_per_rank(self):
        def body():
            return master_persona().owner_rank

        assert spmd_run(body, ranks=3).values == [0, 1, 2]


class TestLpc:
    def test_master_lpc_runs_in_progress(self, ctx):
        ran = []
        fut = lpc(master_persona(), lambda: ran.append(1) or "done")
        assert ran == []
        ctx.progress()
        assert ran == [1]
        assert fut.result() == "done"

    def test_lpc_result_future(self, ctx):
        fut = lpc(master_persona(), lambda a, b: a * b, 6, 7)
        ctx.progress()
        assert fut.result() == 42

    def test_inactive_persona_defers_until_activated(self, ctx):
        p = Persona("idle")
        ran = []
        lpc(p, lambda: ran.append(1))
        ctx.progress()
        assert ran == []  # not active: must not run
        with persona_scope(p):
            ctx.progress()
        assert ran == [1]

    def test_lpc_ordering_fifo(self, ctx):
        order = []
        for i in range(4):
            lpc(master_persona(), lambda i=i: order.append(i))
        ctx.progress()
        assert order == [0, 1, 2, 3]

    def test_cross_rank_lpc(self):
        def body():
            me = rank_me()
            p = master_persona()
            from repro import DistObject

            d = DistObject(p)
            barrier()
            if me == 0:
                peer_persona = d.fetch(1).wait()
                fut = lpc(peer_persona, rank_me)
                got = fut.wait()
                barrier()
                return got
            barrier()  # progress inside barrier runs the incoming LPC
            return None

        res = spmd_run(body, ranks=2)
        assert res.values[0] == 1  # ran on rank 1


class TestErrors:
    def test_foreign_rank_activation_rejected(self):
        def body():
            from repro import DistObject

            p = Persona("mine")
            d = DistObject(p)
            barrier()
            if rank_me() == 1:
                foreign = d.fetch(0).wait()
                with pytest.raises(UpcxxError):
                    with persona_scope(foreign):
                        pass
            barrier()

        spmd_run(body, ranks=2)

    def test_out_of_order_exit_rejected(self, ctx):
        a, b = Persona("a"), Persona("b")
        sa, sb = persona_scope(a), persona_scope(b)
        sa.__enter__()
        sb.__enter__()
        with pytest.raises(UpcxxError):
            sa.__exit__(None, None, None)
        # clean up properly
        sb.__exit__(None, None, None)
        sa.__exit__(None, None, None)
