"""The open-loop serving driver (:mod:`repro.serve`).

The serving benchmark's claims rest on invariants pinned here:

* **determinism** — a run is a pure function of its config: same seed
  twice is bit-identical, and the event-loop scheduler substrate
  reproduces the thread substrate tick for tick;
* **zero perturbation** — turning request-span observability on changes
  *nothing* about virtual time or the latency sketches, and turning it
  off allocates no spans at all (the request path performs one
  ``ctx.obs is None`` check);
* **measurement correctness** — every request hits a prepopulated key,
  the queue/service/total phase algebra holds, per-class sketches
  partition the ``all`` rollup, SLO accounting matches the total sketch,
  and the world rollup is independent of merge order;
* **open-loop semantics** — pushing offered rate past the service rate
  grows queueing delay and the latency tail (the saturation knee the
  sweep in :mod:`repro.bench.servebench` locates).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.runtime.config import Version, flags_for
from repro.serve import PHASES, ServeConfig, run_serve
from repro.serve.driver import merge_serve_snapshots, sketch_key
from repro.serve.workload import KCLASSES
from tests.conftest import VE, obs_flags

#: Small but non-trivial: 4 ranks x 64 requests, 128 keys, moderate load.
CFG = ServeConfig(
    log2_slots=10,
    key_space=128,
    requests_per_rank=64,
    offered_rate_rps=2e6,
    seed=3,
)
RANKS = 4

_cache: dict = {}


def serve(key, **kw):
    """Run (and memoise) one serving experiment for this module."""
    if key not in _cache:
        kw.setdefault("ranks", RANKS)
        _cache[key] = run_serve(kw.pop("cfg", CFG), **kw)
    return _cache[key]


def baseline():
    return serve("baseline")


def fingerprint(res):
    """Everything that must be bit-identical between equivalent runs."""
    return (
        res.solve_ns,
        res.slo_misses,
        res.by_op,
        res.sketches,
        tuple(s.sketches for s in res.per_rank),
    )


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = baseline()
        b = serve("baseline-again")
        assert fingerprint(a) == fingerprint(b)

    def test_event_loop_substrate_matches_threads(self):
        a = baseline()
        b = serve(
            "evloop", flags=flags_for(VE).replace(sched_event_loop=True)
        )
        assert fingerprint(a) == fingerprint(b)

    def test_blocking_body_matches_continuation(self):
        a = baseline()
        b = serve("blocking", continuation=False)
        assert fingerprint(a) == fingerprint(b)


class TestZeroPerturbation:
    def test_obs_on_is_tick_identical_to_obs_off(self):
        plain = baseline()
        traced = serve("traced", flags=obs_flags(VE))
        assert fingerprint(plain) == fingerprint(traced)

    def test_traced_run_carries_request_spans(self):
        traced = serve("traced", flags=obs_flags(VE))
        assert traced.obs is not None
        assert traced.obs.total_requests == traced.requests
        assert traced.obs.total_requests_dropped == 0
        assert traced.obs.requests_by_op == traced.by_op

    def test_obs_off_allocates_no_spans(self, monkeypatch):
        import repro.obs.span as span_mod

        def boom(self, *a, **kw):  # pragma: no cover - must never run
            raise AssertionError("RequestSpan allocated with obs off")

        monkeypatch.setattr(span_mod.ObsState, "begin_request", boom)
        res = serve("no-obs-fresh")
        assert res.obs is None
        assert res.requests == RANKS * CFG.requests_per_rank


class TestCorrectness:
    def test_every_request_hits_a_prepopulated_key(self):
        res = baseline()
        assert res.correct
        assert res.missing == 0
        assert res.requests == RANKS * CFG.requests_per_rank
        assert sum(res.by_op.values()) == res.requests
        assert set(res.by_op) <= {"get", "put", "cas"}

    def test_classes_partition_the_all_rollup(self):
        res = baseline()
        for phase in PHASES:
            whole = res.sketches[sketch_key(phase, "all")]
            parts = [
                res.sketches[sketch_key(phase, kc)]
                for kc in KCLASSES
                if sketch_key(phase, kc) in res.sketches
            ]
            assert sum(p.n for p in parts) == whole.n == res.requests
        # the zipf skew must actually exercise the hot class
        assert res.sketches[sketch_key("total", "hot")].n > 0

    def test_phase_algebra(self):
        res = baseline()
        total = res.sketches[sketch_key("total", "all")]
        queue = res.sketches[sketch_key("queue", "all")]
        service = res.sketches[sketch_key("service", "all")]
        assert queue.min >= 0.0
        assert service.min > 0.0  # every request does real work
        assert total.total == pytest.approx(queue.total + service.total)

    def test_slo_accounting_matches_the_total_sketch(self):
        generous = serve(
            "slo-generous", cfg=dataclasses.replace(CFG, slo_ns=1e12)
        )
        assert generous.slo_misses == 0
        strict = serve(
            "slo-strict", cfg=dataclasses.replace(CFG, slo_ns=1.0)
        )
        assert strict.slo_misses == strict.requests
        # the SLO knob only relabels: virtual time is untouched
        assert fingerprint(generous)[0] == fingerprint(strict)[0]

    def test_achieved_rate_is_positive_and_bounded(self):
        res = baseline()
        assert 0.0 < res.achieved_rate_rps
        assert res.solve_ns > 0
        pct = res.percentiles("total", "all")
        assert 0.0 < pct["p50"] <= pct["p99"] <= pct["p999"]
        assert res.mean_ns("total") > 0.0


class TestMerge:
    def test_world_rollup_equals_result(self):
        res = baseline()
        merged = merge_serve_snapshots(res.per_rank)
        assert merged.rank == -1
        assert merged.n == res.requests
        assert merged.missing == res.missing
        assert merged.slo_misses == res.slo_misses
        assert merged.by_op == res.by_op
        assert merged.sketches == res.sketches

    def test_merge_is_order_independent(self):
        res = baseline()
        fwd = merge_serve_snapshots(res.per_rank)
        rev = merge_serve_snapshots(tuple(reversed(res.per_rank)))
        assert fwd.sketches == rev.sketches
        assert fwd.by_op == rev.by_op

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_serve_snapshots([])


class TestOpenLoop:
    def test_overload_grows_queueing_and_the_tail(self):
        calm = serve(
            "calm", cfg=dataclasses.replace(CFG, offered_rate_rps=2e5)
        )
        slammed = serve(
            "slammed", cfg=dataclasses.replace(CFG, offered_rate_rps=4e7)
        )
        # 200k rps is far below the service rate: requests rarely queue.
        # 40M rps is far above it: the backlog (and sojourn) must grow.
        assert (
            slammed.mean_ns("queue") > 10 * max(calm.mean_ns("queue"), 1.0)
        )
        assert (
            slammed.percentiles()["p99"] > calm.percentiles()["p99"]
        )

    def test_table_too_small_is_rejected(self):
        from repro.errors import UpcxxError

        with pytest.raises(UpcxxError):
            run_serve(
                dataclasses.replace(CFG, log2_slots=6), ranks=2
            )

    def test_version_separation_exists(self):
        # the headline claim in miniature: defer and eager are not the
        # same simulation (exact ordering is the bench's concern)
        eager = baseline()
        defer = serve("defer", version=Version.V2021_3_6_DEFER)
        assert fingerprint(eager) != fingerprint(defer)
